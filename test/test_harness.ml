(* Harness utilities: table rendering and the trial runner. *)

module Table = Delphic_harness.Table
module Trial = Delphic_harness.Trial

let test_table_alignment () =
  let out =
    Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: sep :: _ ->
    Alcotest.(check bool) "header padded" true
      (String.length header >= String.length "long-name  value");
    Alcotest.(check bool) "separator dashes" true (String.contains sep '-')
  | _ -> Alcotest.fail "expected at least header and separator");
  (* All non-empty lines share the same width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no output")

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () -> ignore (Table.render ~header:[ "a"; "b" ] [ [ "only-one" ] ]))

let test_cells () =
  Alcotest.(check string) "zero" "0" (Table.cell_f 0.0);
  Alcotest.(check string) "plain" "12.35" (Table.cell_f 12.3456);
  Alcotest.(check string) "exponential" "1.234e+09" (Table.cell_f 1.2341e9);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)

let test_timed () =
  let { Trial.value; seconds } = Trial.timed (fun () -> 21 * 2) in
  Alcotest.(check int) "value" 42 value;
  Alcotest.(check bool) "non-negative time" true (seconds >= 0.0)

let test_run_seeds () =
  let seen = ref [] in
  let outcomes =
    Trial.run ~trials:5 ~base_seed:100 (fun ~seed ->
        seen := seed :: !seen;
        seed)
  in
  Alcotest.(check (list int)) "seeds consecutive" [ 104; 103; 102; 101; 100 ] !seen;
  Alcotest.(check int) "outcomes" 5 (List.length outcomes)

let test_estimates_summary () =
  let est, err, _secs =
    Trial.estimates ~trials:4 ~base_seed:0 ~truth:100.0 (fun ~seed ->
        100.0 +. float_of_int seed)
  in
  Alcotest.(check int) "count" 4 (Delphic_util.Summary.count est);
  Alcotest.(check (float 1e-9)) "mean estimate" 101.5 (Delphic_util.Summary.mean est);
  Alcotest.(check (float 1e-9)) "mean rel err" 0.015 (Delphic_util.Summary.mean err)

let test_failure_rate () =
  let values = [ 100.0; 109.0; 111.0; 89.0; 150.0 ] in
  (* 111, 89 and 150 deviate by more than 10. *)
  Alcotest.(check (float 1e-9)) "3 of 5 outside 10%" 0.6
    (Trial.failure_rate ~epsilon:0.1 ~truth:100.0 values)

let test_parallel_map_matches_sequential () =
  let f x = (x * x) + 1 in
  let input = List.init 103 Fun.id in
  Alcotest.(check (list int)) "order preserved, results equal" (List.map f input)
    (Delphic_harness.Parallel.map ~domains:4 f input);
  Alcotest.(check (list int)) "single domain fallback" (List.map f input)
    (Delphic_harness.Parallel.map ~domains:1 f input);
  Alcotest.(check (list int)) "empty" [] (Delphic_harness.Parallel.map f []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Delphic_harness.Parallel.map f [ 1 ]);
  Alcotest.(check bool) "default domains >= 1" true
    (Delphic_harness.Parallel.default_domains () >= 1)

let test_parallel_map_with_estimators () =
  (* Realistic use: independent estimator trials across domains agree with
     sequential execution (everything is seed-deterministic). *)
  let module V = Delphic_core.Vatic.Make (Delphic_sets.Range1d) in
  let gen = Delphic_util.Rng.create ~seed:211 in
  let pool =
    Delphic_stream.Workload.Ranges.uniform gen ~universe:100_000 ~count:60 ~max_len:2000
  in
  let run seed =
    let t = V.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0 ~seed () in
    List.iter (V.process t) pool;
    V.estimate t
  in
  let seeds = List.init 8 (fun i -> 400 + i) in
  Alcotest.(check (list (float 1e-9))) "parallel = sequential"
    (List.map run seeds)
    (Delphic_harness.Parallel.map ~domains:4 run seeds)

let test_parallel_map_skewed () =
  (* Work stealing: one item a thousand times heavier than the rest must not
     serialise the pool behind a fixed chunk split — here we only pin the
     correctness half (order preserved, every item done exactly once). *)
  let calls = Atomic.make 0 in
  let f x =
    Atomic.incr calls;
    let spins = if x = 7 then 200_000 else 200 in
    let acc = ref 0 in
    for i = 1 to spins do
      acc := !acc + (i mod 3)
    done;
    (x, !acc land 1)
  in
  let input = List.init 64 Fun.id in
  let out = Delphic_harness.Parallel.map ~domains:4 f input in
  Alcotest.(check (list int)) "order preserved under skew" input (List.map fst out);
  Alcotest.(check int) "each item computed once" 64 (Atomic.get calls)

let test_reduce_edges () =
  let module Par = Delphic_harness.Parallel in
  Alcotest.(check (option int)) "empty" None
    (Par.reduce ~domains:4 ~map:Fun.id ~merge:( + ) []);
  Alcotest.(check (option int)) "singleton maps, never merges" (Some 10)
    (Par.reduce ~domains:4 ~map:(fun x -> x * 10) ~merge:(fun _ _ -> assert false) [ 1 ]);
  Alcotest.(check (option string)) "single domain" (Some "abc")
    (Par.reduce ~domains:1 ~map:Fun.id ~merge:( ^ ) [ "a"; "b"; "c" ])

(* The contract the coordinator's gather leans on: for an associative merge
   the tree fold equals the serial left fold, whatever the item count or
   domain budget.  String concatenation is associative but not commutative,
   so any leaf misordering or tree-shape asymmetry shows up verbatim. *)
let qcheck_reduce_matches_fold =
  QCheck.Test.make ~count:200 ~name:"Parallel.reduce = List.fold_left"
    QCheck.(pair (list small_string) (int_range 1 8))
    (fun (items, domains) ->
      let mapped = List.map (fun s -> "<" ^ s ^ ">") items in
      let expected =
        match mapped with
        | [] -> None
        | x :: rest -> Some (List.fold_left ( ^ ) x rest)
      in
      Delphic_harness.Parallel.reduce ~domains
        ~map:(fun s -> "<" ^ s ^ ">")
        ~merge:( ^ ) items
      = expected)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table rejects ragged rows" `Quick test_table_ragged_rejected;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "timed" `Quick test_timed;
    Alcotest.test_case "run assigns consecutive seeds" `Quick test_run_seeds;
    Alcotest.test_case "estimates summary" `Quick test_estimates_summary;
    Alcotest.test_case "failure rate" `Quick test_failure_rate;
    Alcotest.test_case "parallel map matches sequential" `Quick test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel estimator trials" `Quick test_parallel_map_with_estimators;
    Alcotest.test_case "parallel map under skew" `Quick test_parallel_map_skewed;
    Alcotest.test_case "reduce edge cases" `Quick test_reduce_edges;
    QCheck_alcotest.to_alcotest qcheck_reduce_matches_fold;
  ]
