(* Wire-protocol codec and registry dispatch, no sockets involved: parsing,
   rendering, round-trips, and the full request -> response step. *)

module P = Delphic_server.Protocol
module Registry = Delphic_server.Registry

let request =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (P.render_request r))
    ( = )

let response =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (P.render_response r))
    ( = )

let parse_ok line =
  match P.parse_request line with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: ERR %s" line (P.error_code e)

let parse_err line =
  match P.parse_request line with
  | Ok r -> Alcotest.failf "parse %S: expected error, got %s" line (P.render_request r)
  | Error e -> P.error_code e

(* --- request parsing --- *)

let test_parse_requests () =
  Alcotest.check request "open"
    (P.Open
       {
         session = "s1";
         family = P.Rect;
         epsilon = 0.2;
         delta = 0.1;
         log2_universe = 40.0;
       })
    (parse_ok "OPEN s1 rect 0.2 0.1 40");
  Alcotest.check request "open dnf"
    (P.Open
       {
         session = "a.b-c_9";
         family = P.Dnf { nvars = 30 };
         epsilon = 0.3;
         delta = 0.2;
         log2_universe = 30.0;
       })
    (parse_ok "open a.b-c_9 dnf:30 0.3 0.2 30");
  Alcotest.check request "open cov"
    (P.Open
       {
         session = "c";
         family = P.Cov { nbits = 14; strength = 2 };
         epsilon = 0.25;
         delta = 0.1;
         log2_universe = 20.0;
       })
    (parse_ok "OPEN c cov:14:2 0.25 0.1 20");
  Alcotest.check request "add keeps payload verbatim"
    (P.Add { session = "s1"; payload = "3 7 12 40"; ts = None })
    (parse_ok "ADD s1 3 7 12 40");
  Alcotest.check request "addb unarmors each token"
    (P.Add_batch { session = "s1"; payloads = [ "0 9 0 9"; "5 14 0 9" ]; ts = None })
    (parse_ok "ADDB s1 2 0%209%200%209 5%2014%200%209");
  Alcotest.check request "addl is addb's replica-log twin"
    (P.Add_log { session = "s1"; payloads = [ "0 9 0 9"; "5 14 0 9" ]; ts = None })
    (parse_ok "ADDL s1 2 0%209%200%209 5%2014%200%209");
  Alcotest.check request "est" (P.Est { session = "s1" }) (parse_ok "EST s1");
  Alcotest.check request "stats (case, cr)"
    (P.Stats { session = "s1" })
    (parse_ok "stats s1\r");
  Alcotest.check request "snapshot"
    (P.Snapshot { session = "s1"; path = "/tmp/a b.snap" })
    (parse_ok "SNAPSHOT s1 /tmp/a b.snap");
  Alcotest.check request "snapshot without path is a fetch"
    (P.Fetch { session = "s1"; cutoff = None })
    (parse_ok "SNAPSHOT s1");
  Alcotest.check request "merge"
    (P.Merge { session = "s1"; encoded = "delphic-snapshot%20v2%0A..." })
    (parse_ok "MERGE s1 delphic-snapshot%20v2%0A...");
  Alcotest.check request "restore"
    (P.Restore { session = "s2"; path = "x.snap" })
    (parse_ok "RESTORE s2 x.snap");
  Alcotest.check request "close" (P.Close { session = "s1" }) (parse_ok "CLOSE s1");
  Alcotest.check request "ping" P.Ping (parse_ok "PING");
  Alcotest.check request "hello" P.Hello (parse_ok "HELLO");
  Alcotest.check request "hello (case)" P.Hello (parse_ok "hello");
  Alcotest.check request "expr"
    (P.Expr
       {
         expr = P.Expr_ast.Diff (P.Expr_ast.Inter (P.Expr_ast.Leaf "A", P.Expr_ast.Leaf "B"), P.Expr_ast.Leaf "C");
         m = None;
         w = None;
       })
    (parse_ok "EXPR (A & B) \\ C");
  Alcotest.check request "expr with sample override"
    (P.Expr
       { expr = P.Expr_ast.Union (P.Expr_ast.Leaf "A", P.Expr_ast.Leaf "B");
         m = Some 1024; w = None })
    (parse_ok "EXPR m=1024 A | B");
  Alcotest.check request "m= is not a leaf prefix"
    (P.Expr { expr = P.Expr_ast.Leaf "m0"; m = None; w = None })
    (parse_ok "EXPR m0")

(* The windowed grammar: t= ingest stamps, WIN queries, windowed fetches
   and windowed expressions. *)
let test_parse_windowed_requests () =
  Alcotest.check request "add with timestamp"
    (P.Add { session = "s1"; payload = "3 7 12 40"; ts = Some 12.5 })
    (parse_ok "ADD s1 t=12.5 3 7 12 40");
  Alcotest.check request "addb with timestamp"
    (P.Add_batch { session = "s1"; payloads = [ "0 9 0 9" ]; ts = Some 2.5 })
    (parse_ok "ADDB s1 t=2.5 1 0%209%200%209");
  Alcotest.check request "addl with timestamp"
    (P.Add_log { session = "s1"; payloads = [ "0 9 0 9" ]; ts = Some 2.5 })
    (parse_ok "ADDL s1 t=2.5 1 0%209%200%209");
  Alcotest.check request "win"
    (P.Win { session = "s1"; seconds = 60.0; at = None })
    (parse_ok "WIN s1 60");
  Alcotest.check request "win pinned"
    (P.Win { session = "s1"; seconds = 0.5; at = Some 100.25 })
    (parse_ok "WIN s1 0.5 at=100.25");
  Alcotest.check request "win inf"
    (P.Win { session = "s1"; seconds = infinity; at = None })
    (parse_ok "WIN s1 inf");
  Alcotest.check request "windowed fetch"
    (P.Fetch { session = "s1"; cutoff = Some 99.5 })
    (parse_ok "SNAPSHOT s1 cut=99.5");
  Alcotest.check request "cut=-looking path needs a ./ prefix"
    (P.Snapshot { session = "s1"; path = "./cut=file.snap" })
    (parse_ok "SNAPSHOT s1 ./cut=file.snap");
  Alcotest.check request "expr with window"
    (P.Expr
       { expr = P.Expr_ast.Union (P.Expr_ast.Leaf "A", P.Expr_ast.Leaf "B");
         m = None; w = Some 60.0 })
    (parse_ok "EXPR w=60 A | B");
  Alcotest.check request "expr options in either order"
    (P.Expr { expr = P.Expr_ast.Leaf "A"; m = Some 64; w = Some 0.5 })
    (parse_ok "EXPR w=0.5 m=64 A")

let test_parse_errors () =
  Alcotest.(check string) "empty" "EMPTY" (parse_err "");
  Alcotest.(check string) "blank" "EMPTY" (parse_err "   ");
  Alcotest.(check string) "unknown verb" "UNSUPPORTED" (parse_err "FROB s1");
  Alcotest.(check string) "open arity" "ARITY" (parse_err "OPEN s1 rect 0.2");
  Alcotest.(check string) "merge arity" "ARITY" (parse_err "MERGE s1");
  Alcotest.(check string) "merge with spaces" "ARITY" (parse_err "MERGE s1 two tokens");
  Alcotest.(check string) "snapshot arity" "ARITY" (parse_err "SNAPSHOT");
  Alcotest.(check string) "est arity" "ARITY" (parse_err "EST");
  Alcotest.(check string) "ping arity" "ARITY" (parse_err "PING extra");
  Alcotest.(check string) "hello arity" "ARITY" (parse_err "HELLO extra");
  Alcotest.(check string) "bad eps" "BAD-NUMBER" (parse_err "OPEN s1 rect zero 0.1 40");
  Alcotest.(check string) "bad family" "BAD-FAMILY" (parse_err "OPEN s1 pentagon 0.2 0.1 40");
  Alcotest.(check string) "dnf needs nvars" "BAD-FAMILY" (parse_err "OPEN s1 dnf:0 0.2 0.1 40");
  Alcotest.(check string) "cov strength > nbits" "BAD-FAMILY"
    (parse_err "OPEN s1 cov:4:5 0.2 0.1 40");
  Alcotest.(check string) "bad session name" "BAD-SESSION-NAME"
    (parse_err "EST has/slash");
  Alcotest.(check string) "add without payload" "ARITY" (parse_err "ADD s1");
  Alcotest.(check string) "addb without payloads" "ARITY" (parse_err "ADDB s1");
  Alcotest.(check string) "addb count mismatch" "ARITY" (parse_err "ADDB s1 3 a b");
  Alcotest.(check string) "addb bad count" "BAD-NUMBER" (parse_err "ADDB s1 x a");
  Alcotest.(check string) "addb zero count" "BAD-NUMBER" (parse_err "ADDB s1 0");
  Alcotest.(check string) "addb bad escape" "PARSE" (parse_err "ADDB s1 1 a%ZZb");
  Alcotest.(check string) "expr arity" "ARITY" (parse_err "EXPR");
  Alcotest.(check string) "expr arity with only m=" "ARITY" (parse_err "EXPR m=64");
  Alcotest.(check string) "expr zero samples" "BAD-EXPR" (parse_err "EXPR m=0 A");
  Alcotest.(check string) "expr bad sample count" "BAD-EXPR" (parse_err "EXPR m=lots A");
  Alcotest.(check string) "malformed expression" "BAD-EXPR" (parse_err "EXPR A &");
  (match P.parse_request "EXPR (A & B" with
  | Error (P.Bad_expr { pos; _ }) ->
    (* columns count within the expression text, not the wire line *)
    Alcotest.(check int) "expr error column" 7 pos
  | _ -> Alcotest.fail "unclosed paren must be BAD-EXPR")

let expect_bad_expr name line pos =
  match P.parse_request line with
  | Error (P.Bad_expr { pos = p; _ }) -> Alcotest.(check int) name pos p
  | Error e -> Alcotest.failf "%s: got ERR %s" name (P.error_code e)
  | Ok r -> Alcotest.failf "%s: parsed as %s" name (P.render_request r)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_parse_window_errors () =
  Alcotest.(check string) "win arity" "ARITY" (parse_err "WIN s1");
  Alcotest.(check string) "win zero window" "BAD-NUMBER" (parse_err "WIN s1 0");
  Alcotest.(check string) "win negative window" "BAD-NUMBER" (parse_err "WIN s1 -3");
  Alcotest.(check string) "win bad at=" "BAD-NUMBER" (parse_err "WIN s1 60 at=noon");
  Alcotest.(check string) "win stray token" "ARITY" (parse_err "WIN s1 60 bogus");
  Alcotest.(check string) "add bad timestamp" "BAD-NUMBER" (parse_err "ADD s1 t=x 1 2");
  Alcotest.(check string) "add timestamp without payload" "ARITY" (parse_err "ADD s1 t=5");
  Alcotest.(check string) "addb bad timestamp" "BAD-NUMBER" (parse_err "ADDB s1 t=x 1 a");
  Alcotest.(check string) "fetch bad cutoff" "BAD-NUMBER" (parse_err "SNAPSHOT s1 cut=abc");
  Alcotest.(check string) "expr option without body" "ARITY" (parse_err "EXPR w=60");
  (* malformed and unknown EXPR options carry the offending token's 1-based
     column in the argument text *)
  expect_bad_expr "zero window column" "EXPR w=0 A" 1;
  expect_bad_expr "negative window column" "EXPR w=-5 A" 1;
  expect_bad_expr "unknown option column" "EXPR q=9 A" 1;
  expect_bad_expr "unknown option after m= column" "EXPR m=64 q=9 A" 6;
  expect_bad_expr "bad m= after w= column" "EXPR w=60 m=zero A" 6;
  match P.parse_request "EXPR m=64 q=9 A" with
  | Error (P.Bad_expr { msg; _ }) ->
    Alcotest.(check bool) "message names the offending token" true
      (contains ~needle:"q=9" msg)
  | _ -> Alcotest.fail "unknown option must be BAD-EXPR"

let test_payload_armor () =
  Alcotest.(check string) "spaces escape" "0%209%200%209" (P.armor_payload "0 9 0 9");
  Alcotest.(check string) "percent escapes itself" "50%2525" (P.armor_payload "50%25");
  let plain = "plain-token" in
  Alcotest.(check bool) "clean payload returned as-is" true (P.armor_payload plain == plain);
  (match P.unarmor_payload "0%209%0A%0D%25" with
  | Ok s -> Alcotest.(check string) "all four escapes decode" "0 9\n\r%" s
  | Error e -> Alcotest.failf "unarmor: %s" e);
  (match P.unarmor_payload "a b" with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "bare space must not decode (got %S)" s);
  (match P.unarmor_payload "abc%2" with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "truncated escape must not decode (got %S)" s);
  match P.unarmor_payload "abc%ZZ" with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "unknown escape must not decode (got %S)" s

let test_session_names () =
  Alcotest.(check bool) "plain ok" true (P.session_name_ok "run-2.b_7");
  Alcotest.(check bool) "empty rejected" false (P.session_name_ok "");
  Alcotest.(check bool) "space rejected" false (P.session_name_ok "a b");
  Alcotest.(check bool) "slash rejected" false (P.session_name_ok "a/b")

let test_family_tokens () =
  List.iter
    (fun f ->
      match P.family_of_token (P.family_to_token f) with
      | Ok f' -> Alcotest.(check bool) "token roundtrip" true (f = f')
      | Error e -> Alcotest.failf "token %s: %s" (P.family_to_token f) (P.error_code e))
    [ P.Rect; P.Dnf { nvars = 40 }; P.Cov { nbits = 14; strength = 2 } ]

(* --- render/parse round-trips --- *)

let roundtrip_request r =
  match P.parse_request (P.render_request r) with
  | Ok r' -> r = r'
  | Error _ -> false

let test_request_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (P.render_request r))
        true (roundtrip_request r))
    [
      P.Open
        {
          session = "s";
          family = P.Cov { nbits = 10; strength = 3 };
          epsilon = 0.05;
          delta = 0.001;
          log2_universe = 64.0;
        };
      P.Add { session = "s"; payload = "0 9 0 9"; ts = None };
      P.Add { session = "s"; payload = "0 9 0 9"; ts = Some 12.5 };
      P.Add_batch
        { session = "s"; payloads = [ "0 9 0 9"; "5 14 0 9"; "50% off\r\n" ];
          ts = None };
      P.Add_batch { session = "s"; payloads = [ "0 9 0 9" ]; ts = Some 1.25e9 };
      P.Add_log
        { session = "s"; payloads = [ "0 9 0 9"; "50% off\r\n" ]; ts = None };
      P.Add_log { session = "s"; payloads = [ "0 9 0 9" ]; ts = Some 1.25e9 };
      P.Win { session = "s"; seconds = 60.0; at = None };
      P.Win { session = "s"; seconds = 0.5; at = Some 1754650000.0 };
      P.Win { session = "s"; seconds = infinity; at = None };
      P.Est { session = "s" };
      P.Stats { session = "s" };
      P.Snapshot { session = "s"; path = "spool/s.snap" };
      P.Restore { session = "s"; path = "spool/s.snap" };
      P.Fetch { session = "s"; cutoff = None };
      P.Fetch { session = "s"; cutoff = Some 1754649990.25 };
      P.Merge { session = "s"; encoded = "delphic-snapshot%20v2%0Aend%0A" };
      P.Close { session = "s" };
      P.Ping;
      P.Hello;
      P.Coord_epoch { epoch = 7 };
      P.Sessions;
      P.Lease;
      P.Expr
        {
          expr =
            P.Expr_ast.Sym_diff
              ( P.Expr_ast.Union (P.Expr_ast.Leaf "A", P.Expr_ast.Leaf "B"),
                P.Expr_ast.Inter (P.Expr_ast.Leaf "C", P.Expr_ast.Leaf "A") );
          m = None;
          w = None;
        };
      P.Expr { expr = P.Expr_ast.Leaf "shard-1.us"; m = Some 4096; w = None };
      P.Expr { expr = P.Expr_ast.Leaf "A"; m = Some 64; w = Some 30.0 };
    ]

let gen_session =
  QCheck.string_gen_of_size
    (QCheck.Gen.int_range 1 12)
    (QCheck.Gen.oneofl
       [ 'a'; 'z'; 'A'; 'Z'; '0'; '9'; '_'; '.'; '-' ])

let prop_open_roundtrip =
  QCheck.Test.make ~name:"OPEN roundtrip (random)" ~count:300
    (QCheck.triple gen_session
       (QCheck.float_range 0.01 0.99)
       (QCheck.float_range 1.0 128.0))
    (fun (session, eps, log2u) ->
      roundtrip_request
        (P.Open
           {
             session;
             family = P.Dnf { nvars = 17 };
             epsilon = eps;
             delta = eps /. 2.0;
             log2_universe = log2u;
           }))

let prop_add_roundtrip =
  QCheck.Test.make ~name:"ADD payload roundtrip (random)" ~count:300
    (QCheck.pair gen_session
       (QCheck.string_gen_of_size
          (QCheck.Gen.int_range 1 40)
          (QCheck.Gen.oneofl [ '0'; '5'; '9'; ' '; '-'; 'x' ])))
    (fun (session, payload) ->
      let payload = String.trim payload in
      QCheck.assume (payload <> "");
      roundtrip_request (P.Add { session; payload; ts = None }))

let gen_payload =
  QCheck.string_gen_of_size
    (QCheck.Gen.int_range 1 30)
    (QCheck.Gen.oneofl [ '0'; '9'; ' '; '%'; '\n'; '\r'; '-'; 'x'; '2'; '5' ])

let prop_armor_roundtrip =
  QCheck.Test.make ~name:"payload armor roundtrip (random)" ~count:500 gen_payload
    (fun payload ->
      let tok = P.armor_payload payload in
      (not (String.exists (fun c -> c = ' ' || c = '\n' || c = '\r') tok))
      && P.unarmor_payload tok = Ok payload)

let prop_addb_roundtrip =
  QCheck.Test.make ~name:"ADDB frame roundtrip (random)" ~count:300
    (QCheck.pair gen_session
       (QCheck.list_of_size (QCheck.Gen.int_range 1 10) gen_payload))
    (fun (session, payloads) ->
      (* an all-escapable payload armors to a non-empty token, so any
         non-empty payload survives the frame *)
      QCheck.assume (List.for_all (fun p -> p <> "") payloads);
      roundtrip_request (P.Add_batch { session; payloads; ts = None }))

let prop_addl_roundtrip =
  QCheck.Test.make ~name:"ADDL frame roundtrip (random)" ~count:300
    (QCheck.pair gen_session
       (QCheck.list_of_size (QCheck.Gen.int_range 1 10) gen_payload))
    (fun (session, payloads) ->
      QCheck.assume (List.for_all (fun p -> p <> "") payloads);
      roundtrip_request (P.Add_log { session; payloads; ts = None }))

let all_errors =
  [
    P.Empty_request;
    P.Unknown_command "FROB";
    P.Wrong_arity { command = "OPEN"; expected = "OPEN <session> <family> <eps> <delta> <log2u>" };
    P.Bad_number { what = "eps"; value = "zero" };
    P.Bad_family "pentagon";
    P.Bad_session_name "a/b";
    P.Unknown_session "ghost";
    P.Session_exists "s1";
    P.Bad_params "epsilon must lie in (0, 1)";
    P.Bad_line { line = 7; msg = "not an integer: bogus" };
    P.Bad_expr { pos = 7; msg = "unclosed '(' opened at column 1" };
    P.Io_error "no such file";
    P.Server_error "boom";
    P.Fenced 5;
    P.Read_only "standby";
  ]

(* The degraded flag and the legacy error spelling have fixed wire forms. *)
let test_wire_forms () =
  Alcotest.(check string)
    "degraded estimate" "EST 150 DEGRADED"
    (P.render_response (P.Estimate { value = 150.0; degraded = true; stale_shards = [] }));
  Alcotest.(check string)
    "clean estimate" "EST 150"
    (P.render_response (P.Estimate { value = 150.0; degraded = false; stale_shards = [] }));
  Alcotest.(check string)
    "unsupported verb code" "ERR UNSUPPORTED FROB"
    (P.render_response (P.Error_reply (P.Unknown_command "FROB")));
  (match P.parse_response "ERR UNKNOWN-COMMAND FROB" with
  | Ok (P.Error_reply (P.Unknown_command "FROB")) -> ()
  | _ -> Alcotest.fail "legacy UNKNOWN-COMMAND spelling must still parse");
  (* payload-free errors render without a trailing space *)
  Alcotest.(check string)
    "empty-request error has no trailing space" "ERR EMPTY"
    (P.render_response (P.Error_reply P.Empty_request));
  Alcotest.(check string)
    "certified expr reply" "EXPR 1234.5 support=96 m=2048 probes=exact"
    (P.render_response
       (P.Expr_reply
          {
            value = Some 1234.5;
            support = 96.0;
            needed = 0.0;
            samples = 2048;
            quality = P.Probes_exact;
            degraded = false;
          }));
  Alcotest.(check string)
    "low-support expr reply" "EXPR LOWSUPPORT support=12.5 need=70.5 m=256 probes=sketch DEGRADED"
    (P.render_response
       (P.Expr_reply
          {
            value = None;
            support = 12.5;
            needed = 70.5;
            samples = 256;
            quality = P.Probes_sketch;
            degraded = true;
          }));
  (* replication-era forms: stale ring positions ride the DEGRADED flag,
     fencing epochs ride HELLO, and both are absent pre-replication *)
  Alcotest.(check string)
    "degraded estimate names its stale shards" "EST 150 DEGRADED shards=0,2"
    (P.render_response
       (P.Estimate { value = 150.0; degraded = true; stale_shards = [ 0; 2 ] }));
  Alcotest.(check string)
    "pre-failover HELLO keeps the bare v1 shape" "HELLO 3"
    (P.render_response (P.Hello_reply { generation = 3; epoch = 0 }));
  Alcotest.(check string)
    "fenced HELLO carries the epoch" "HELLO 3 epoch=9"
    (P.render_response (P.Hello_reply { generation = 3; epoch = 9 }));
  Alcotest.(check string)
    "COORD announces a fencing epoch" "COORD 7"
    (P.render_request (P.Coord_epoch { epoch = 7 }));
  Alcotest.(check string)
    "primary lease" "LEASE epoch=4 role=primary"
    (P.render_response (P.Lease_reply { epoch = 4; primary = true }));
  Alcotest.(check string)
    "fenced write error" "ERR FENCED 9"
    (P.render_response (P.Error_reply (P.Fenced 9)));
  (* COORD must reject a non-positive epoch: epoch 0 means "never announced"
     and can never be claimed over the wire *)
  (match P.parse_request "COORD 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "COORD 0 must be rejected");
  (* pre-replication SRVSTATS lines (no shard_fresh=) parse as [] *)
  (match
     P.parse_response
       "SRVSTATS conns=1 shed=0 domains=1 dispatched=4 wal_queue=0 wal_last_group=0 wal_groups=0"
   with
  | Ok (P.Server_stats_reply s) ->
    Alcotest.(check (list int)) "legacy srvstats shard_fresh" [] s.P.shard_fresh
  | _ -> Alcotest.fail "legacy SRVSTATS line must parse");
  (* pre-cluster STATS lines (no merges=) parse with merges = 0 *)
  match
    P.parse_response
      "STATS family=rect items=2 entries=150 mode=exact estimate=150 rejects=0"
  with
  | Ok (P.Stats_reply s) -> Alcotest.(check int) "legacy stats merges" 0 s.P.merges
  | _ -> Alcotest.fail "legacy STATS line must parse"

let test_response_roundtrip () =
  let responses =
    [
      P.Ok_reply None;
      P.Ok_reply (Some "opened s1");
      P.Estimate { value = 1745152.0; degraded = false; stale_shards = [] };
      P.Estimate { value = 0.0; degraded = false; stale_shards = [] };
      P.Estimate { value = 1.5e12; degraded = true; stale_shards = [] };
      P.Estimate { value = 42.0; degraded = true; stale_shards = [ 1; 3; 4 ] };
      P.Stats_reply
        {
          family = "cov:14:2";
          items = 42;
          entries = 6817;
          exact = false;
          last_estimate = 1745152.0;
          parse_rejects = 1;
          merges = 3;
        };
      P.Sketch "delphic-snapshot%20v2%0Afamily%20rect%0Aend%0A";
      P.Ok_batch { accepted = 64; errors = [] };
      P.Ok_batch
        {
          accepted = 3;
          errors =
            [
              (1, "not an integer: bogus");
              (4, "dimension 3 but stream started with 2");
            ];
        };
      P.Pong;
      P.Hello_reply { generation = 1; epoch = 0 };
      P.Hello_reply { generation = 0x40000000 lor 12345; epoch = 0 };
      P.Hello_reply { generation = 17; epoch = 3 };
      P.Epoch_reply { epoch = 4 };
      P.Lease_reply { epoch = 4; primary = true };
      P.Lease_reply { epoch = 2; primary = false };
      P.Sessions_reply [];
      P.Sessions_reply
        [
          {
            P.sd_name = "ads.us";
            sd_family = "rect";
            sd_epsilon = 0.2;
            sd_delta = 0.1;
            sd_log2_universe = 34.0;
          };
          {
            P.sd_name = "ads.eu";
            sd_family = "cov:14:2";
            sd_epsilon = 0.05;
            sd_delta = 0.001;
            sd_log2_universe = 64.0;
          };
        ];
      P.Server_stats_reply
        {
          conns = 3;
          shed = 0;
          dispatched = [ 2; 1 ];
          wal_queue = 0;
          wal_last_group = 4;
          wal_groups = 9;
          shard_fresh = [ 2; 2; 1 ];
        };
      P.Expr_reply
        {
          value = Some 1745152.0;
          support = 812.0;
          needed = 0.0;
          samples = 2048;
          quality = P.Probes_exact;
          degraded = false;
        };
      P.Expr_reply
        {
          value = Some 0.25;
          support = 71.5;
          needed = 0.0;
          samples = 64;
          quality = P.Probes_sketch;
          degraded = true;
        };
      P.Expr_reply
        {
          value = None;
          support = 12.5;
          needed = 70.5;
          samples = 256;
          quality = P.Probes_sketch;
          degraded = false;
        };
    ]
    @ List.map (fun e -> P.Error_reply e) all_errors
  in
  List.iter
    (fun r ->
      match P.parse_response (P.render_response r) with
      | Ok r' -> Alcotest.check response (P.render_response r) r r'
      | Error msg -> Alcotest.failf "parse %S: %s" (P.render_response r) msg)
    responses

let test_single_line () =
  List.iter
    (fun e ->
      let s = P.render_response (P.Error_reply e) in
      Alcotest.(check bool)
        (Printf.sprintf "one line: %s" s)
        false
        (String.contains s '\n'))
    all_errors

(* --- registry dispatch (request -> response, still no sockets) --- *)

let dispatch reg line = Registry.dispatch reg (parse_ok line)

let test_dispatch_lifecycle () =
  let reg = Registry.create ~seed:42 () in
  Alcotest.check response "ping" P.Pong (dispatch reg "PING");
  (* the registry has no process identity; 0 = unfenced (the TCP server
     overrides this with its real generation) *)
  Alcotest.check response "hello"
    (P.Hello_reply { generation = 0; epoch = 0 })
    (dispatch reg "HELLO");
  Alcotest.check response "open"
    (P.Ok_reply (Some "opened s1"))
    (dispatch reg "OPEN s1 rect 0.3 0.2 20");
  Alcotest.check response "double open"
    (P.Error_reply (P.Session_exists "s1"))
    (dispatch reg "OPEN s1 rect 0.3 0.2 20");
  Alcotest.check response "add" (P.Ok_reply None) (dispatch reg "ADD s1 0 9 0 9");
  Alcotest.check response "overlapping add" (P.Ok_reply None)
    (dispatch reg "ADD s1 5 14 0 9");
  (* 10x10 and 10x10 overlapping on a 5x10 strip: 150 points, exact mode. *)
  Alcotest.check response "exact estimate"
    (P.Estimate { value = 150.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST s1");
  Alcotest.check response "bad line keeps session"
    (P.Error_reply (P.Bad_line { line = 3; msg = "not an integer: bogus" }))
    (dispatch reg "ADD s1 bogus 9 0 9");
  Alcotest.check response "dim mismatch rejected"
    (P.Error_reply
       (P.Bad_line { line = 4; msg = "dimension 3 but stream started with 2" }))
    (dispatch reg "ADD s1 0 1 0 1 0 1");
  Alcotest.check response "estimate unchanged"
    (P.Estimate { value = 150.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST s1");
  (match dispatch reg "STATS s1" with
  | P.Stats_reply s ->
    Alcotest.(check string) "family" "rect" s.P.family;
    Alcotest.(check int) "items" 2 s.P.items;
    Alcotest.(check int) "entries" 150 s.P.entries;
    Alcotest.(check bool) "exact" true s.P.exact;
    Alcotest.(check int) "rejects" 2 s.P.parse_rejects;
    Alcotest.(check int) "merges" 0 s.P.merges
  | r -> Alcotest.failf "STATS: %s" (P.render_response r));
  Alcotest.check response "close"
    (P.Ok_reply (Some "closed s1"))
    (dispatch reg "CLOSE s1");
  Alcotest.check response "closed session gone"
    (P.Error_reply (P.Unknown_session "s1"))
    (dispatch reg "EST s1")

(* ADDB through the registry: one frame, one reply, per-payload errors
   reported by index while later payloads still land. *)
let test_dispatch_batch () =
  let reg = Registry.create ~seed:53 () in
  ignore (dispatch reg "OPEN s1 rect 0.3 0.2 20");
  Alcotest.check response "clean frame"
    (P.Ok_batch { accepted = 2; errors = [] })
    (dispatch reg "ADDB s1 2 0%209%200%209 5%2014%200%209");
  Alcotest.check response "estimate after batch"
    (P.Estimate { value = 150.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST s1");
  (* malformed payload mid-batch: index 1 is rejected, indexes 0 and 2 land *)
  Alcotest.check response "frame with one bad payload"
    (P.Ok_batch { accepted = 2; errors = [ (1, "not an integer: bogus") ] })
    (Registry.dispatch reg
       (P.Add_batch
          { session = "s1";
            payloads = [ "20 29 0 9"; "bogus 9 0 9"; "30 39 0 9" ];
            ts = None }));
  Alcotest.check response "later payloads landed"
    (P.Estimate { value = 350.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST s1");
  (* two bad payloads: both indexes reported, the frame still half-lands *)
  Alcotest.check response "frame with two bad payloads"
    (P.Ok_batch
       {
         accepted = 1;
         errors =
           [
             (0, "not an integer: x");
             (2, "dimension 3 but stream started with 2");
           ];
       })
    (Registry.dispatch reg
       (P.Add_batch
          {
            session = "s1";
            payloads = [ "x 9 0 9"; "40 49 0 9"; "0 1 0 1 0 1" ];
            ts = None;
          }));
  (match dispatch reg "STATS s1" with
  | P.Stats_reply s ->
    Alcotest.(check int) "every accepted payload processed" 5 s.P.items;
    Alcotest.(check int) "rejects accumulated" 3 s.P.parse_rejects
  | r -> Alcotest.failf "STATS: %s" (P.render_response r));
  Alcotest.check response "unknown session refuses the whole frame"
    (P.Error_reply (P.Unknown_session "ghost"))
    (dispatch reg "ADDB ghost 1 0%209%200%209")

(* ADDL through the registry: the replica-log path acks each frame without
   touching the estimator, and the session's next read absorbs the log —
   same answers and counters as eager ADDB under the same seed. *)
let test_dispatch_log () =
  let reg_eager = Registry.create ~seed:53 () in
  let reg_log = Registry.create ~seed:53 () in
  ignore (dispatch reg_eager "OPEN s1 rect 0.3 0.2 20");
  ignore (dispatch reg_log "OPEN s1 rect 0.3 0.2 20");
  ignore (dispatch reg_eager "ADDB s1 2 0%209%200%209 5%2014%200%209");
  Alcotest.check response "log frame acked in the ADDB shape"
    (P.Ok_batch { accepted = 2; errors = [] })
    (dispatch reg_log "ADDL s1 2 0%209%200%209 5%2014%200%209");
  Alcotest.check response "read materialises the log"
    (dispatch reg_eager "EST s1")
    (dispatch reg_log "EST s1");
  (* malformed payloads are acked blind — the eager replica already told the
     sender — and only surface as reject counts at materialisation *)
  Alcotest.check response "bad payload still acked"
    (P.Ok_batch { accepted = 3; errors = [] })
    (Registry.dispatch reg_log
       (P.Add_log
          { session = "s1";
            payloads = [ "20 29 0 9"; "bogus 9 0 9"; "30 39 0 9" ];
            ts = None }));
  Alcotest.check response "good payloads landed at next read"
    (P.Estimate { value = 350.0; degraded = false; stale_shards = [] })
    (dispatch reg_log "EST s1");
  (match dispatch reg_log "STATS s1" with
  | P.Stats_reply s ->
    Alcotest.(check int) "accepted payloads processed" 4 s.P.items;
    Alcotest.(check int) "reject surfaced at materialisation" 1 s.P.parse_rejects
  | r -> Alcotest.failf "STATS: %s" (P.render_response r));
  Alcotest.check response "unknown session refuses the log frame"
    (P.Error_reply (P.Unknown_session "ghost"))
    (dispatch reg_log "ADDL ghost 1 0%209%200%209")

(* The batching equivalence behind the whole ADDB design: chopping one
   stream into arbitrary frames must leave the registry in exactly the
   state singleton ADDs produce — same RNG consumption, same counters,
   same estimate. *)
let prop_batch_equivalence =
  QCheck.Test.make ~name:"ADDB frames match singleton ADDs" ~count:60
    (QCheck.list_of_size (QCheck.Gen.int_range 1 12) (QCheck.int_range 1 7))
    (fun chops ->
      let payloads =
        List.init 40 (fun i ->
            let x = i * 17 mod 83 and y = i * 29 mod 71 in
            Printf.sprintf "%d %d %d %d" x (x + (i mod 9)) y (y + (i mod 7)))
      in
      let open_req = parse_ok "OPEN s rect 0.3 0.2 20" in
      let reg_single = Registry.create ~seed:1234 () in
      let reg_batch = Registry.create ~seed:1234 () in
      ignore (Registry.dispatch reg_single open_req);
      ignore (Registry.dispatch reg_batch open_req);
      List.iter
        (fun p ->
          ignore
            (Registry.dispatch reg_single (P.Add { session = "s"; payload = p; ts = None })))
        payloads;
      let rec take n = function
        | [] -> ([], [])
        | l when n = 0 -> ([], l)
        | x :: tl ->
          let a, b = take (n - 1) tl in
          (x :: a, b)
      in
      let rec feed i = function
        | [] -> ()
        | remaining ->
          let k = List.nth chops (i mod List.length chops) in
          let frame, rest = take k remaining in
          ignore
            (Registry.dispatch reg_batch
               (P.Add_batch { session = "s"; payloads = frame; ts = None }));
          feed (i + 1) rest
      in
      feed 0 payloads;
      let e1 = Registry.dispatch reg_single (P.Est { session = "s" }) in
      let e2 = Registry.dispatch reg_batch (P.Est { session = "s" }) in
      let s1 = Registry.dispatch reg_single (P.Stats { session = "s" }) in
      let s2 = Registry.dispatch reg_batch (P.Stats { session = "s" }) in
      e1 = e2 && s1 = s2)

(* The replica-log equivalence: deferring arbitrary ADDL chops and absorbing
   them at the first read must leave the registry in exactly the state
   singleton ADDs produce — the materialisation replays payloads in arrival
   order under the session RNG, so estimates and counters agree. *)
let prop_log_equivalence =
  QCheck.Test.make ~name:"ADDL frames absorbed at read match singleton ADDs"
    ~count:60
    (QCheck.list_of_size (QCheck.Gen.int_range 1 12) (QCheck.int_range 1 7))
    (fun chops ->
      let payloads =
        List.init 40 (fun i ->
            let x = i * 17 mod 83 and y = i * 29 mod 71 in
            Printf.sprintf "%d %d %d %d" x (x + (i mod 9)) y (y + (i mod 7)))
      in
      let open_req = parse_ok "OPEN s rect 0.3 0.2 20" in
      let reg_single = Registry.create ~seed:1234 () in
      let reg_log = Registry.create ~seed:1234 () in
      ignore (Registry.dispatch reg_single open_req);
      ignore (Registry.dispatch reg_log open_req);
      List.iter
        (fun p ->
          ignore
            (Registry.dispatch reg_single (P.Add { session = "s"; payload = p; ts = None })))
        payloads;
      let rec take n = function
        | [] -> ([], [])
        | l when n = 0 -> ([], l)
        | x :: tl ->
          let a, b = take (n - 1) tl in
          (x :: a, b)
      in
      let rec feed i = function
        | [] -> ()
        | remaining ->
          let k = List.nth chops (i mod List.length chops) in
          let frame, rest = take k remaining in
          ignore
            (Registry.dispatch reg_log
               (P.Add_log { session = "s"; payloads = frame; ts = None }));
          feed (i + 1) rest
      in
      feed 0 payloads;
      let e1 = Registry.dispatch reg_single (P.Est { session = "s" }) in
      let e2 = Registry.dispatch reg_log (P.Est { session = "s" }) in
      let s1 = Registry.dispatch reg_single (P.Stats { session = "s" }) in
      let s2 = Registry.dispatch reg_log (P.Stats { session = "s" }) in
      e1 = e2 && s1 = s2)

let test_dispatch_validation () =
  let reg = Registry.create ~seed:7 () in
  Alcotest.check response "unknown session"
    (P.Error_reply (P.Unknown_session "ghost"))
    (dispatch reg "EST ghost");
  (match dispatch reg "OPEN bad rect 2.0 0.1 40" with
  | P.Error_reply (P.Bad_params _) -> ()
  | r -> Alcotest.failf "expected BAD-PARAMS, got %s" (P.render_response r));
  (* dnf sessions parse DIMACS-style terms *)
  Alcotest.check response "open dnf"
    (P.Ok_reply (Some "opened d"))
    (dispatch reg "OPEN d dnf:10 0.3 0.2 10");
  Alcotest.check response "dnf add" (P.Ok_reply None) (dispatch reg "ADD d 1 -3 7");
  (match dispatch reg "ADD d 1 99" with
  | P.Error_reply (P.Bad_line _) -> ()
  | r -> Alcotest.failf "expected PARSE, got %s" (P.render_response r))

let test_dispatch_snapshot_restore () =
  let reg = Registry.create ~seed:11 () in
  let path = Filename.temp_file "delphic-proto" ".snap" in
  ignore (dispatch reg "OPEN s rect 0.3 0.2 20");
  ignore (dispatch reg "ADD s 0 9 0 9");
  Alcotest.check response "snapshot"
    (P.Ok_reply (Some "snapshotted s"))
    (dispatch reg (Printf.sprintf "SNAPSHOT s %s" path));
  Alcotest.check response "restore under new name"
    (P.Ok_reply (Some "restored s2"))
    (dispatch reg (Printf.sprintf "RESTORE s2 %s" path));
  Alcotest.check response "restored estimate"
    (P.Estimate { value = 100.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST s2");
  Alcotest.check response "restore over live session"
    (P.Error_reply (P.Session_exists "s"))
    (dispatch reg (Printf.sprintf "RESTORE s %s" path));
  (match dispatch reg "RESTORE s3 /nonexistent/nowhere.snap" with
  | P.Error_reply (P.Io_error _) -> ()
  | r -> Alcotest.failf "expected IO error, got %s" (P.render_response r));
  Sys.remove path

(* SNAPSHOT <sid> / MERGE <sid> <token>: the worker half of the cluster.
   Exact-mode sessions make the merged union deterministic. *)
let test_dispatch_fetch_merge () =
  let reg = Registry.create ~seed:23 () in
  ignore (dispatch reg "OPEN a rect 0.3 0.2 20");
  ignore (dispatch reg "OPEN b rect 0.3 0.2 20");
  ignore (dispatch reg "ADD a 0 9 0 9");
  ignore (dispatch reg "ADD b 5 14 0 9");
  let encoded =
    match dispatch reg "SNAPSHOT b" with
    | P.Sketch e -> e
    | r -> Alcotest.failf "SNAPSHOT b: %s" (P.render_response r)
  in
  Alcotest.(check bool)
    "wire token is space-free" false
    (String.exists (fun c -> c = ' ' || c = '\n') encoded);
  Alcotest.check response "merge b into a"
    (P.Ok_reply (Some "merged into a"))
    (dispatch reg (Printf.sprintf "MERGE a %s" encoded));
  (* both squares are 10x10, overlapping on a 5x10 strip: union 150 *)
  Alcotest.check response "merged exact union"
    (P.Estimate { value = 150.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST a");
  (match dispatch reg "STATS a" with
  | P.Stats_reply s ->
    Alcotest.(check int) "merges counted" 1 s.P.merges;
    Alcotest.(check int) "items absorbed" 2 s.P.items
  | r -> Alcotest.failf "STATS a: %s" (P.render_response r));
  (* donor is untouched *)
  Alcotest.check response "donor estimate unchanged"
    (P.Estimate { value = 100.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST b");
  (* error paths: garbage token, family mismatch, unknown session *)
  (match dispatch reg "MERGE a not-a-snapshot" with
  | P.Error_reply (P.Bad_params _) -> ()
  | r -> Alcotest.failf "garbage MERGE: %s" (P.render_response r));
  ignore (dispatch reg "OPEN d dnf:10 0.3 0.2 10");
  (match dispatch reg (Printf.sprintf "MERGE d %s" encoded) with
  | P.Error_reply (P.Bad_params _) -> ()
  | r -> Alcotest.failf "family-mismatch MERGE: %s" (P.render_response r));
  Alcotest.check response "fetch of unknown session"
    (P.Error_reply (P.Unknown_session "ghost"))
    (dispatch reg "SNAPSHOT ghost")

(* An unsupported verb must be answered, not punished: the registry replies
   ERR UNSUPPORTED and the session keeps working. *)
let test_dispatch_unsupported () =
  let reg = Registry.create ~seed:29 () in
  ignore (dispatch reg "OPEN s rect 0.3 0.2 20");
  ignore (dispatch reg "ADD s 0 9 0 9");
  (match P.parse_request "FROB s" with
  | Error e ->
    Alcotest.(check string) "code" "UNSUPPORTED" (P.error_code e);
    Alcotest.(check string)
      "rendered reply" "ERR UNSUPPORTED FROB"
      (P.render_response (P.Error_reply e))
  | Ok r -> Alcotest.failf "FROB parsed as %s" (P.render_request r));
  Alcotest.check response "session survives the unknown verb"
    (P.Estimate { value = 100.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST s")

(* EXPR through the registry: exact-regime sessions make the answers
   deterministic — every union sample of [A | B] is a hit, so the reply is
   exactly the union size; disjoint leaves yield LOWSUPPORT; unknown leaves
   and mixed families are clean errors that leave the sessions working. *)
let test_dispatch_expr () =
  let reg = Registry.create ~seed:61 () in
  ignore (dispatch reg "OPEN A rect 0.3 0.2 20");
  ignore (dispatch reg "OPEN B rect 0.3 0.2 20");
  ignore (dispatch reg "ADD A 0 9 0 9");
  ignore (dispatch reg "ADD B 5 14 0 9");
  (match dispatch reg "EXPR A | B" with
  | P.Expr_reply { value = Some v; support; samples; quality; degraded; _ } ->
    Alcotest.(check (float 0.0)) "A | B is the whole union" 150.0 v;
    Alcotest.(check (float 0.0)) "every draw hits" (float_of_int samples) support;
    Alcotest.(check int) "default sample count" 256 samples;
    Alcotest.(check bool) "exact probes" true (quality = P.Probes_exact);
    Alcotest.(check bool) "single registry is never degraded" false degraded
  | r -> Alcotest.failf "EXPR A | B: %s" (P.render_response r));
  (match dispatch reg "EXPR m=64 A | B" with
  | P.Expr_reply { samples = 64; _ } -> ()
  | r -> Alcotest.failf "EXPR m=64: %s" (P.render_response r));
  (* disjoint sessions: no evidence for the intersection *)
  ignore (dispatch reg "OPEN far rect 0.3 0.2 20");
  ignore (dispatch reg "ADD far 500 509 500 509");
  (match dispatch reg "EXPR m=128 A & far" with
  | P.Expr_reply { value = None; support; needed; _ } ->
    Alcotest.(check (float 0.0)) "no evidence" 0.0 support;
    Alcotest.(check bool) "needed is positive" true (needed > 0.0)
  | r -> Alcotest.failf "EXPR A & far: %s" (P.render_response r));
  (match dispatch reg "EXPR A & ghost" with
  | P.Error_reply e -> Alcotest.(check string) "unknown leaf" "UNKNOWN-SESSION" (P.error_code e)
  | r -> Alcotest.failf "EXPR A & ghost: %s" (P.render_response r));
  ignore (dispatch reg "OPEN D dnf:8 0.3 0.2 8");
  (match dispatch reg "EXPR A & D" with
  | P.Error_reply e -> Alcotest.(check string) "mixed family" "BAD-PARAMS" (P.error_code e)
  | r -> Alcotest.failf "EXPR A & D: %s" (P.render_response r));
  (* the query cloned its leaves: the live sessions keep ingesting *)
  Alcotest.check response "A still serves EST"
    (P.Estimate { value = 100.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST A")

(* WIN through the registry with a pinned clock: exact-regime sessions make
   windowed answers deterministic (the exact table keeps each element's
   last-occurrence time).  Square A is t=10, square B t=100; the clock sits
   at 130 so different windows select different suffixes. *)
let test_dispatch_win () =
  let clock = ref 0.0 in
  let reg = Registry.create ~clock:(fun () -> !clock) ~seed:71 () in
  ignore (dispatch reg "OPEN s rect 0.3 0.2 20");
  ignore (dispatch reg "ADD s t=10 0 9 0 9");
  ignore (dispatch reg "ADD s t=100 20 29 0 9");
  clock := 130.0;
  Alcotest.check response "window covering both adds"
    (P.Estimate { value = 200.0; degraded = false; stale_shards = [] })
    (dispatch reg "WIN s 150");
  Alcotest.check response "window covering only the fresh add"
    (P.Estimate { value = 100.0; degraded = false; stale_shards = [] })
    (dispatch reg "WIN s 60");
  Alcotest.check response "window covering nothing"
    (P.Estimate { value = 0.0; degraded = false; stale_shards = [] })
    (dispatch reg "WIN s 10");
  Alcotest.check response "WIN inf agrees with EST"
    (dispatch reg "EST s")
    (dispatch reg "WIN s inf");
  (* pinning at= moves the query instant: the same 25 s window is empty at
     the live clock but catches square B from t=120 *)
  Alcotest.check response "unpinned 25 s window is empty"
    (P.Estimate { value = 0.0; degraded = false; stale_shards = [] })
    (dispatch reg "WIN s 25");
  Alcotest.check response "pinned 25 s window catches square B"
    (P.Estimate { value = 100.0; degraded = false; stale_shards = [] })
    (dispatch reg "WIN s 25 at=120");
  (* a re-occurrence refreshes its elements' last-seen time *)
  ignore (dispatch reg "ADD s t=120 0 9 0 9");
  Alcotest.check response "re-occurrence refreshes square A"
    (P.Estimate { value = 200.0; degraded = false; stale_shards = [] })
    (dispatch reg "WIN s 60");
  Alcotest.check response "win of unknown session"
    (P.Error_reply (P.Unknown_session "ghost"))
    (dispatch reg "WIN ghost 60");
  (* STATS last_estimate is the full-stream figure; WIN must not touch it *)
  (match dispatch reg "STATS s" with
  | P.Stats_reply st ->
    Alcotest.(check bool) "WIN left last_estimate alone" true
      (st.P.last_estimate = 200.0)
  | r -> Alcotest.failf "STATS s: %s" (P.render_response r));
  (* windowed EXPR: every leaf is restricted to the same trailing window *)
  ignore (dispatch reg "OPEN b rect 0.3 0.2 20");
  ignore (dispatch reg "ADD b t=125 40 49 0 9");
  (match dispatch reg "EXPR w=60 s | b" with
  | P.Expr_reply { value = Some v; quality; _ } ->
    Alcotest.(check (float 0.0)) "60 s windowed union" 300.0 v;
    Alcotest.(check bool) "exact probes" true (quality = P.Probes_exact)
  | r -> Alcotest.failf "EXPR w=60: %s" (P.render_response r));
  (match dispatch reg "EXPR w=20 s | b" with
  | P.Expr_reply { value = Some v; _ } ->
    Alcotest.(check (float 0.0)) "20 s windowed union" 200.0 v
  | r -> Alcotest.failf "EXPR w=20: %s" (P.render_response r));
  (* the windowed query cloned its leaves: full-stream EST is untouched *)
  Alcotest.check response "EST unchanged after windowed EXPR"
    (P.Estimate { value = 200.0; degraded = false; stale_shards = [] })
    (dispatch reg "EST s")

(* Striped locking under fire: two writers hammering ADDB into different
   sessions, a reader spinning EST/STATS/FETCH on a third, and the main
   thread taking whole-table snapshots throughout.  Exact-regime sessions
   make loss visible — every accepted payload is a distinct unit cell, so
   the final counts and estimates are deterministic.  A lock-ordering bug
   shows up as a hang, a lost add as a wrong exact count, a torn snapshot
   as a failed per-session outcome. *)
let test_striped_concurrency () =
  let reg = Registry.create ~stripes:4 ~seed:97 () in
  let open_s name =
    match
      Registry.open_session reg ~name ~family:P.Rect ~epsilon:0.3 ~delta:0.2
        ~log2_universe:17.0
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "open %s: %s" name (P.render_response (P.Error_reply e))
  in
  List.iter open_s [ "wa"; "wb"; "rc" ];
  (match Registry.add reg ~name:"rc" ~payload:"0 4 0 4" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "seed rc");
  (* writer [row] fills row [row] of the grid with distinct unit cells *)
  let payload row i = Printf.sprintf "%d %d %d %d" i i row row in
  let rounds = 40 and per = 10 in
  let err_lock = Mutex.create () in
  let errs = ref [] in
  let record msg =
    Mutex.lock err_lock;
    errs := msg :: !errs;
    Mutex.unlock err_lock
  in
  let writer row name =
    Thread.create
      (fun () ->
        for r = 0 to rounds - 1 do
          let payloads = List.init per (fun j -> payload row ((r * per) + j)) in
          match Registry.add_batch reg ~name ~payloads with
          | Ok (n, []) when n = per -> ()
          | Ok (n, e) ->
            record
              (Printf.sprintf "%s: frame accepted %d/%d with %d rejects" name n per
                 (List.length e))
          | Error e -> record (name ^ ": " ^ P.render_response (P.Error_reply e))
        done)
      ()
  in
  let reader =
    Thread.create
      (fun () ->
        for _ = 1 to 300 do
          (match Registry.estimate reg ~name:"rc" with
          | Ok v when v = 25.0 -> ()
          | Ok v -> record (Printf.sprintf "rc estimate drifted to %g" v)
          | Error e -> record ("rc est: " ^ P.render_response (P.Error_reply e)));
          (match Registry.fetch reg ~name:"rc" with
          | Ok _ -> ()
          | Error e -> record ("rc fetch: " ^ P.render_response (P.Error_reply e)));
          match Registry.stats reg ~name:"rc" with
          | Ok _ -> ()
          | Error e -> record ("rc stats: " ^ P.render_response (P.Error_reply e))
        done)
      ()
  in
  let threads = [ writer 1 "wa"; writer 2 "wb"; reader ] in
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "delphic-stripes-%d" (Unix.getpid ()))
  in
  for _ = 1 to 5 do
    let outcomes = Registry.snapshot_all reg ~dir in
    Alcotest.(check int) "snapshot_all sees the whole table" 3 (List.length outcomes);
    List.iter
      (fun (name, r) ->
        match r with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "snapshot_all %s: %s" name msg)
      outcomes;
    Thread.delay 0.002
  done;
  List.iter Thread.join threads;
  (match !errs with
  | [] -> ()
  | e :: _ -> Alcotest.failf "%d concurrent failures, first: %s" (List.length !errs) e);
  let total = rounds * per in
  List.iter
    (fun name ->
      match (Registry.stats reg ~name, Registry.estimate reg ~name) with
      | Ok st, Ok est ->
        Alcotest.(check int) (name ^ " adds all landed") total st.P.items;
        Alcotest.(check int) (name ^ " no parse rejects") 0 st.P.parse_rejects;
        Alcotest.(check (float 0.0)) (name ^ " exact union") (float_of_int total) est
      | _ -> Alcotest.failf "%s unreadable after the run" name)
    [ "wa"; "wb" ];
  Alcotest.(check (list string)) "all sessions present" [ "rc"; "wa"; "wb" ]
    (List.sort compare (Registry.names reg));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let suite =
  [
    Alcotest.test_case "parse requests" `Quick test_parse_requests;
    Alcotest.test_case "parse windowed requests" `Quick test_parse_windowed_requests;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse windowed errors" `Quick test_parse_window_errors;
    Alcotest.test_case "payload armor" `Quick test_payload_armor;
    Alcotest.test_case "session names" `Quick test_session_names;
    Alcotest.test_case "family tokens" `Quick test_family_tokens;
    Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "wire forms" `Quick test_wire_forms;
    Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
    Alcotest.test_case "responses are one line" `Quick test_single_line;
    QCheck_alcotest.to_alcotest prop_open_roundtrip;
    QCheck_alcotest.to_alcotest prop_add_roundtrip;
    QCheck_alcotest.to_alcotest prop_armor_roundtrip;
    QCheck_alcotest.to_alcotest prop_addb_roundtrip;
    QCheck_alcotest.to_alcotest prop_addl_roundtrip;
    Alcotest.test_case "dispatch lifecycle" `Quick test_dispatch_lifecycle;
    Alcotest.test_case "dispatch batched adds" `Quick test_dispatch_batch;
    Alcotest.test_case "dispatch replica-log adds" `Quick test_dispatch_log;
    QCheck_alcotest.to_alcotest prop_batch_equivalence;
    QCheck_alcotest.to_alcotest prop_log_equivalence;
    Alcotest.test_case "dispatch validation" `Quick test_dispatch_validation;
    Alcotest.test_case "dispatch snapshot/restore" `Quick test_dispatch_snapshot_restore;
    Alcotest.test_case "dispatch fetch/merge" `Quick test_dispatch_fetch_merge;
    Alcotest.test_case "dispatch unsupported verb" `Quick test_dispatch_unsupported;
    Alcotest.test_case "dispatch expr" `Quick test_dispatch_expr;
    Alcotest.test_case "dispatch win" `Quick test_dispatch_win;
    Alcotest.test_case "striped registry under concurrent fire" `Quick
      test_striped_concurrency;
  ]
