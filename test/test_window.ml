(* lib/window end to end: strategy invariants (window = ∞ equals the full
   estimate, exponential-histogram chain bounds, expire-on-query), and
   windowed accuracy against exact truth recomputed on the trailing suffix —
   over rect/dnf/cov/singleton pools under Poisson, bursty and Zipf-item
   arrival traces.

   The windowed Delphic union |{x : last occurrence >= cutoff}| equals the
   plain union of the suffix sets (any element of a suffix set has its last
   occurrence in the suffix), so the exact baselines need no new machinery:
   filter the trace, recompute the union. *)

module Rng = Delphic_util.Rng
module B = Delphic_util.Bigint
module Workload = Delphic_stream.Workload
module T = Workload.Timestamped
module Exact = Delphic_sets.Exact
module Range1d = Delphic_sets.Range1d
module Singleton = Delphic_sets.Singleton
module Win = Delphic_window.Window
module WR = Win.Make (Range1d)

let epochs = Win.Epochs { epoch = 8.0; max_per_rank = 2 }

(* --- the accuracy harness: estimate vs suffix-exact, both strategies ---

   Documented bound (DESIGN.md "Windowed queries"): a windowed query is the
   Horvitz–Thompson sum over sampled entries at or after the cutoff.  It is
   unbiased for the suffix union, with the per-query (ε, δ) guarantee of the
   underlying sketch when the window holds a constant fraction of the
   stream; we run [trials] independent seeds and allow the δ-rate failures
   plus sampling-thinning slack by requiring at most 25% of trials outside
   ε_eff = 1.8ε relative error. *)
let check_windowed (type s e) ~name ~trials ~epsilon ~log2_universe ~strategy
    ~truth_of ~events ~windows
    (module F : Delphic_family.Family.FAMILY with type t = s and type elt = e) =
  let module W = Delphic_window.Window.Make (F) in
  let now =
    List.fold_left (fun acc (e : s T.event) -> Float.max acc e.T.at) 0.0 events
  in
  List.iter
    (fun window ->
      let cutoff = now -. window in
      let suffix = List.filter (fun (e : s T.event) -> e.T.at >= cutoff) events in
      let truth = truth_of (T.items suffix) in
      let eps_eff = 1.8 *. epsilon in
      let failures = ref 0 in
      for i = 0 to trials - 1 do
        let w =
          W.create ~strategy ~epsilon ~delta:0.2 ~log2_universe
            ~seed:(4200 + (31 * i))
            ()
        in
        List.iter (fun (e : s T.event) -> W.process w ~now:e.T.at e.T.item) events;
        let est = W.query w ~now ~window in
        if truth = 0.0 then begin
          (* nothing survives the cutoff: the HT sum must be exactly 0 *)
          if est <> 0.0 then incr failures
        end
        else if Float.abs (est -. truth) > eps_eff *. truth then incr failures
      done;
      if 4 * !failures > trials then
        Alcotest.failf "%s (window %g): %d/%d trials outside %.2f of suffix truth"
          name window !failures trials eps_eff)
    windows

(* --- range streams under Poisson and bursty clocks, both strategies --- *)

let range_events ~seed ~count ~stamp =
  let gen = Rng.create ~seed in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count ~max_len:5_000 in
  stamp gen pool

let range_truth pool = float_of_int (Exact.range_union pool)

let test_ranges_poisson_tagged () =
  let events =
    range_events ~seed:301 ~count:240 ~stamp:(fun gen pool ->
        T.poisson gen ~rate:1.0 ~start:0.0 pool)
  in
  check_windowed ~name:"ranges/poisson/tagged" ~trials:10 ~epsilon:0.25
    ~log2_universe:20.0 ~strategy:Win.Tagged ~truth_of:range_truth ~events
    ~windows:[ 60.0; 150.0; infinity ]
    (module Range1d)

let test_ranges_bursty_epochs () =
  let events =
    range_events ~seed:302 ~count:200 ~stamp:(fun gen pool ->
        T.bursty gen ~quiet:30.0 ~burst_len:40 ~burst_rate:4.0 ~start:0.0 pool)
  in
  check_windowed ~name:"ranges/bursty/epochs" ~trials:10 ~epsilon:0.25
    ~log2_universe:20.0
    ~strategy:(Win.Epochs { epoch = 8.0; max_per_rank = 2 })
    ~truth_of:range_truth ~events
    ~windows:[ 45.0; 120.0; infinity ]
    (module Range1d)

(* --- rect / dnf / cov pools, one arrival shape each --- *)

let test_rect_poisson () =
  let gen = Rng.create ~seed:303 in
  let pool =
    Workload.Rectangles.uniform gen ~universe:4096 ~dim:2 ~count:150 ~max_side:200
  in
  let events = T.poisson gen ~rate:1.0 ~start:0.0 pool in
  check_windowed ~name:"rect/poisson/tagged" ~trials:8 ~epsilon:0.25
    ~log2_universe:24.0 ~strategy:Win.Tagged
    ~truth_of:(fun p -> B.to_float (Exact.rectangle_union p))
    ~events
    ~windows:[ 50.0; infinity ]
    (module Delphic_sets.Rectangle)

let dnf_nvars = 26

let dnf_bursty_events () =
  let gen = Rng.create ~seed:304 in
  let pool = Workload.Dnf_terms.random gen ~nvars:dnf_nvars ~count:120 ~width:6 in
  T.bursty gen ~quiet:20.0 ~burst_len:30 ~burst_rate:2.0 ~start:0.0 pool

(* DNF assignments recur across the whole trace (every satisfying assignment
   of a term re-occurs with each later overlapping term), so this is the
   Tagged strategy's home ground: exact cutoffs, no cross-epoch merge. *)
let test_dnf_bursty () =
  let events = dnf_bursty_events () in
  check_windowed ~name:"dnf/bursty/tagged" ~trials:8 ~epsilon:0.25
    ~log2_universe:(float_of_int dnf_nvars) ~strategy:Win.Tagged
    ~truth_of:(fun p -> B.to_float (Exact.dnf_count ~nvars:dnf_nvars p))
    ~events
    ~windows:[ 40.0; infinity ]
    (module Delphic_sets.Dnf)

(* The same trace under Epochs pins the documented chain caveat (window.mli,
   DESIGN.md): merge coins are independent across sub-sketches, so an element
   recurring in several epochs can be counted once per sub-sketch holding it.
   The fold's answer is upper-biased but two-sided bounded:
   (1-ε_eff)·|∪|  <=  est  <=  (1+ε_eff)·(chain length)·|∪|,
   since each live bucket's union is a subset of the full union. *)
let test_dnf_epochs_overlap_bound () =
  let events = dnf_bursty_events () in
  let module W = Delphic_window.Window.Make (Delphic_sets.Dnf) in
  let now = List.fold_left (fun acc (e : _ T.event) -> Float.max acc e.T.at) 0.0 events in
  let truth = B.to_float (Exact.dnf_count ~nvars:dnf_nvars (T.items events)) in
  let eps_eff = 1.8 *. 0.25 in
  let failures = ref 0 in
  let trials = 8 in
  for i = 0 to trials - 1 do
    let w =
      W.create
        ~strategy:(Win.Epochs { epoch = 10.0; max_per_rank = 2 })
        ~epsilon:0.25 ~delta:0.2 ~log2_universe:(float_of_int dnf_nvars)
        ~seed:(6100 + (31 * i))
        ()
    in
    List.iter (fun (e : _ T.event) -> W.process w ~now:e.T.at e.T.item) events;
    let chain = float_of_int (W.sub_sketches w) in
    let est = W.query w ~now ~window:infinity in
    let lo = (1.0 -. eps_eff) *. truth in
    let hi = (1.0 +. eps_eff) *. chain *. truth in
    if not (est >= lo && est <= hi) then incr failures
  done;
  if 4 * !failures > trials then
    Alcotest.failf "dnf/epochs overlap bound: %d/%d trials escaped [lo, chain*hi]"
      !failures trials

let test_cov_diurnal () =
  let nbits = 14 and strength = 2 in
  let gen = Rng.create ~seed:305 in
  let vectors = Workload.Coverage_suites.random gen ~nbits ~count:120 ~bias:0.4 in
  let pool = Workload.Coverage_suites.coverage_sets ~strength vectors in
  let stamped = T.diurnal gen ~rate:1.0 ~period:60.0 ~swing:0.8 ~start:0.0 pool in
  (* keep (vector, event) pairs aligned so suffix truth uses the vectors *)
  let paired = List.combine vectors stamped in
  let truth_of_suffix cutoff =
    let vs =
      List.filter_map
        (fun (v, (e : Delphic_sets.Coverage.t T.event)) ->
          if e.T.at >= cutoff then Some v else None)
        paired
    in
    B.to_float (Exact.coverage_union ~strength vs)
  in
  let now = List.fold_left (fun acc e -> Float.max acc e.T.at) 0.0 stamped in
  let module W = Delphic_window.Window.Make (Delphic_sets.Coverage) in
  List.iter
    (fun window ->
      let truth = truth_of_suffix (now -. window) in
      let failures = ref 0 in
      let trials = 8 in
      for i = 0 to trials - 1 do
        let w =
          W.create ~epsilon:0.25 ~delta:0.2
            ~log2_universe:
              (B.log2 (Delphic_sets.Coverage.universe_size ~n:nbits ~strength))
            ~seed:(5200 + (31 * i))
            ()
        in
        List.iter (fun (e : _ T.event) -> W.process w ~now:e.T.at e.T.item) stamped;
        let est = W.query w ~now ~window in
        if Float.abs (est -. truth) > 0.45 *. truth then incr failures
      done;
      if 4 * !failures > trials then
        Alcotest.failf "cov/diurnal (window %g): %d/%d outside bound" window
          !failures trials)
    [ 60.0; infinity ]

(* --- Zipf singleton trace: heavy re-occurrence refreshes timestamps --- *)

let test_singletons_zipf () =
  let gen = Rng.create ~seed:306 in
  let pool = Workload.Singletons.zipf gen ~universe:40_000 ~count:400 ~exponent:1.1 in
  let events = T.poisson gen ~rate:2.0 ~start:0.0 pool in
  check_windowed ~name:"singletons/zipf/tagged" ~trials:10 ~epsilon:0.25
    ~log2_universe:16.0 ~strategy:Win.Tagged
    ~truth_of:(fun p -> float_of_int (Exact.distinct (List.map Singleton.value p)))
    ~events
    ~windows:[ 60.0; infinity ]
    (module Singleton)

(* --- qcheck: windowed = full when the window is infinite (both
   strategies), over random range traces --- *)

let gen_trace =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* count = int_range 1 120 in
    let* rate = float_range 0.2 4.0 in
    let* burst = bool in
    return (seed, count, rate, burst))

let build_trace (seed, count, rate, burst) =
  let gen = Rng.create ~seed in
  let pool = Workload.Ranges.uniform gen ~universe:100_000 ~count ~max_len:900 in
  if burst then T.bursty gen ~quiet:10.0 ~burst_len:16 ~burst_rate:rate ~start:0.0 pool
  else T.poisson gen ~rate ~start:0.0 pool

let prop_inf_window_is_full =
  QCheck.Test.make ~name:"window = inf equals the full estimate (random)" ~count:40
    (QCheck.make gen_trace) (fun ((seed, _, _, _) as cfg) ->
      let events = build_trace cfg in
      let now = List.fold_left (fun acc e -> Float.max acc e.T.at) 0.0 events in
      List.for_all
        (fun strategy ->
          let w =
            WR.create ~strategy ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0
              ~seed ()
          in
          List.iter (fun (e : _ T.event) -> WR.process w ~now:e.T.at e.T.item) events;
          WR.query w ~now ~window:infinity = WR.estimate w)
        [ Win.Tagged; Win.Epochs { epoch = 5.0; max_per_rank = 3 } ])

(* a window reaching behind the first arrival is the same as no window *)
let prop_covering_window_is_full =
  QCheck.Test.make ~name:"covering window equals the full estimate (random)"
    ~count:40 (QCheck.make gen_trace) (fun ((seed, _, _, _) as cfg) ->
      let events = build_trace cfg in
      let now = List.fold_left (fun acc e -> Float.max acc e.T.at) 0.0 events in
      let w =
        WR.create ~strategy:Win.Tagged ~epsilon:0.3 ~delta:0.2
          ~log2_universe:17.0 ~seed ()
      in
      List.iter (fun (e : _ T.event) -> WR.process w ~now:e.T.at e.T.item) events;
      WR.query w ~now ~window:(now +. 10.0) = WR.estimate w)

(* --- Epochs chain mechanics --- *)

let feed_constant w ~count ~dt =
  let gen = Rng.create ~seed:42 in
  let pool = Workload.Ranges.uniform gen ~universe:100_000 ~count ~max_len:500 in
  List.iteri (fun i r -> WR.process w ~now:(float_of_int i *. dt) r) pool

let test_chain_is_logarithmic () =
  let w =
    WR.create ~strategy:epochs ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0
      ~seed:9 ()
  in
  (* 1 set/second for 1024 s at epoch 8 s: 128 base epochs *)
  feed_constant w ~count:1024 ~dt:1.0;
  let base_epochs = 128.0 in
  let bound =
    (* max_per_rank buckets per rank, ranks 0..log2(base epochs), + head *)
    (2 * (1 + int_of_float (Float.ceil (Float.log2 base_epochs)))) + 1
  in
  Alcotest.(check bool)
    (Printf.sprintf "chain %d <= %d" (WR.sub_sketches w) bound)
    true
    (WR.sub_sketches w <= bound);
  Alcotest.(check int) "every set counted" 1024 (WR.items w);
  Alcotest.(check (float 0.0)) "clock high-water mark" 1023.0 (WR.last_seen w)

let test_expire_on_query () =
  let w =
    WR.create ~strategy:epochs ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0
      ~seed:11 ()
  in
  feed_constant w ~count:512 ~dt:1.0;
  let before = WR.sub_sketches w in
  (* only the last ~2 epochs stay live; everything older is dropped *)
  let v = WR.query w ~now:511.0 ~window:16.0 in
  let after = WR.sub_sketches w in
  Alcotest.(check bool)
    (Printf.sprintf "chain shrank (%d -> %d)" before after)
    true (after < before);
  Alcotest.(check bool) "windowed estimate sane" true (v >= 0.0);
  (* dropping sealed epochs must not disturb a later covering query's
     relation to the live suffix: still answers, still non-negative *)
  let v' = WR.query w ~now:511.0 ~window:16.0 in
  Alcotest.(check bool) "repeat query stable space" true (WR.sub_sketches w = after);
  Alcotest.(check bool) "repeat query sane" true (v' >= 0.0)

let test_late_arrival_absorbed () =
  let w =
    WR.create ~strategy:epochs ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0
      ~seed:13 ()
  in
  WR.process w ~now:100.0 (Range1d.create ~lo:0 ~hi:9);
  (* a stamp behind the open epoch is absorbed, never dropped *)
  WR.process w ~now:40.0 (Range1d.create ~lo:100 ~hi:109);
  Alcotest.(check int) "both sets counted" 2 (WR.items w);
  Alcotest.(check (float 0.0)) "high-water mark keeps the max" 100.0 (WR.last_seen w);
  let est = WR.query w ~now:100.0 ~window:infinity in
  Alcotest.(check bool) "both contribute" true (est > 0.0)

let test_reoccurrence_refreshes () =
  let w =
    WR.create ~strategy:Win.Tagged ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0
      ~seed:17 ()
  in
  let a = Range1d.create ~lo:0 ~hi:999 in
  WR.process w ~now:0.0 a;
  WR.process w ~now:50.0 (Range1d.create ~lo:5_000 ~hi:5_999);
  WR.process w ~now:100.0 a;
  (* [a]'s last occurrence is t=100: a 10 s window must keep it whole *)
  let est = WR.query w ~now:100.0 ~window:10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "refreshed window estimate %g near 1000" est)
    true
    (Float.abs (est -. 1000.0) <= 450.0)

let test_validation () =
  let mk strategy =
    WR.create ~strategy ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0 ~seed:1 ()
  in
  (match mk (Win.Epochs { epoch = 0.0; max_per_rank = 2 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "epoch 0 must be rejected");
  (match mk (Win.Epochs { epoch = 1.0; max_per_rank = 1 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_per_rank 1 must be rejected");
  let w = mk Win.Tagged in
  match WR.query w ~now:0.0 ~window:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window 0 must be rejected"

(* --- timestamped workload generators --- *)

let test_timestamped_generators () =
  let items = List.init 200 (fun i -> i) in
  let non_decreasing evs =
    let rec go = function
      | a :: (b :: _ as tl) -> a.T.at <= b.T.at && go tl
      | _ -> true
    in
    go evs
  in
  List.iter
    (fun (name, evs) ->
      Alcotest.(check bool) (name ^ " stamps non-decreasing") true (non_decreasing evs);
      Alcotest.(check bool) (name ^ " items preserved") true (T.items evs = items);
      Alcotest.(check bool) (name ^ " span non-negative") true (T.span evs >= 0.0))
    [
      ("poisson", T.poisson (Rng.create ~seed:21) ~rate:3.0 ~start:5.0 items);
      ("constant", T.constant ~rate:10.0 ~start:0.0 items);
      ( "bursty",
        T.bursty (Rng.create ~seed:22) ~quiet:7.0 ~burst_len:13 ~burst_rate:5.0
          ~start:0.0 items );
      ( "diurnal",
        T.diurnal (Rng.create ~seed:23) ~rate:2.0 ~period:30.0 ~swing:0.9
          ~start:0.0 items );
    ];
  (* constant rate is exactly uniform *)
  let c = T.constant ~rate:4.0 ~start:1.0 items in
  Alcotest.(check (float 1e-9)) "constant span" (199.0 /. 4.0) (T.span c);
  (match T.diurnal (Rng.create ~seed:1) ~rate:1.0 ~period:10.0 ~swing:1.5 ~start:0.0 [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "swing > 1 must be rejected");
  match T.poisson (Rng.create ~seed:1) ~rate:0.0 ~start:0.0 [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate 0 must be rejected"

let suite =
  [
    Alcotest.test_case "ranges poisson (tagged)" `Quick test_ranges_poisson_tagged;
    Alcotest.test_case "ranges bursty (epochs)" `Quick test_ranges_bursty_epochs;
    Alcotest.test_case "rect poisson" `Quick test_rect_poisson;
    Alcotest.test_case "dnf bursty (tagged)" `Quick test_dnf_bursty;
    Alcotest.test_case "dnf epochs overlap bound" `Quick test_dnf_epochs_overlap_bound;
    Alcotest.test_case "cov diurnal" `Quick test_cov_diurnal;
    Alcotest.test_case "singletons zipf" `Quick test_singletons_zipf;
    QCheck_alcotest.to_alcotest prop_inf_window_is_full;
    QCheck_alcotest.to_alcotest prop_covering_window_is_full;
    Alcotest.test_case "epoch chain is logarithmic" `Quick test_chain_is_logarithmic;
    Alcotest.test_case "expire on query" `Quick test_expire_on_query;
    Alcotest.test_case "late arrival absorbed" `Quick test_late_arrival_absorbed;
    Alcotest.test_case "re-occurrence refreshes" `Quick test_reoccurrence_refreshes;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "timestamped generators" `Quick test_timestamped_generators;
  ]
