(* Deterministic fault injection against the live cluster.  Each seed runs
   three real workers' worth of machinery — two worker servers, a
   coordinator, real sockets — behind a Chaos transport that drops, tears,
   corrupts and closes at seeded random.  The contract under test: the
   cluster never hangs, never desyncs its reply stream (surfacing as
   protocol errors or wrong acks), never *invents* elements (in the exact
   regime the estimate can only be <= truth), and once the faults stop it
   settles back to the exact fault-free answer.

   Corruption is injected on the READ side only in the convergence runs: a
   corrupted reply makes the coordinator drop the connection and replay
   (at-least-once, duplicate-safe), while a corrupted *request* would make a
   worker legitimately reject a payload as unparseable — a loss the
   protocol reports in [parse_rejects] but cannot undo.  Write-side faults
   here are the lossy-but-recoverable kinds: drop, partial, close. *)

module Server = Delphic_server.Server
module P = Delphic_server.Protocol
module Coordinator = Delphic_cluster.Coordinator
module Rpc = Delphic_cluster.Rpc
module Chaos = Delphic_harness.Chaos
module Rng = Delphic_util.Rng
module Bigint = Delphic_util.Bigint
module Rectangle = Delphic_sets.Rectangle
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload

let spool n =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "delphic-chaos-spool-%d-%d" (Unix.getpid ()) n)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* DELPHIC_TEST_DOMAINS=N shards each worker's front end across N domains,
   so the fault menu also runs against the multicore layout (CI uses 4). *)
let test_domains =
  match int_of_string_opt (try Sys.getenv "DELPHIC_TEST_DOMAINS" with Not_found -> "") with
  | Some d when d > 1 -> d
  | _ -> 1

let start_worker n ~seed =
  rm_rf (spool n);
  let s = Server.create ~port:0 ~spool:(spool n) ~seed ~domains:test_domains () in
  let th = Server.start s in
  (s, th)

let stop_worker (s, th) =
  Server.request_stop s;
  Thread.join th

let payload_of box =
  let lo = Rectangle.lo box and hi = Rectangle.hi box in
  let b = Buffer.create 32 in
  Array.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (Printf.sprintf "%d %d" l hi.(i)))
    lo;
  Buffer.contents b

let truth boxes = Bigint.to_float (Exact.rectangle_union boxes)

(* One seeded chaos run: ingest under faults, quiesce, assert exact
   reconvergence.  [write_cfg]/[read_cfg] are separate Chaos instances so
   the fault menus can differ per direction (see the header comment). *)
let run_seed ?(proto = Rpc.V1) ~seed ~write_cfg ~read_cfg ~expect_faults () =
  let wbase = 40 + (seed mod 10 * 2) in
  let workers = [ start_worker wbase ~seed:(1000 + seed); start_worker (wbase + 1) ~seed:(2000 + seed) ] in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let wchaos = Chaos.create write_cfg in
  let rchaos = Chaos.create read_cfg in
  (* chaos off during OPEN: the run tests recovery of an established
     cluster, not unlucky bootstrap *)
  Chaos.set_enabled wchaos false;
  Chaos.set_enabled rchaos false;
  let io =
    {
      Rpc.io_read = Chaos.wrap_read rchaos Unix.read;
      io_write = Chaos.wrap_write wchaos Unix.write_substring;
    }
  in
  (* tiny batch/window: many frames and many ack drains, so the fault menu
     gets plenty of socket operations to bite on *)
  let coord =
    Coordinator.create ~timeout:0.4 ~retries:2 ~backoff:0.01 ~batch:2 ~window:8
      ~io ~proto ~workers:addrs ~seed:(77 + seed) ()
  in
  let name = Printf.sprintf "chaos-%d" seed in
  let gen = Rng.create ~seed:(31 + seed) in
  let boxes =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count:40 ~max_side:6
  in
  let tr = truth boxes in
  (match
     Coordinator.open_session coord ~name ~family:P.Rect ~epsilon:0.3 ~delta:0.2
       ~log2_universe:17.0
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d: open: %s" seed (P.describe_error e));

  Chaos.set_enabled wchaos true;
  Chaos.set_enabled rchaos true;
  (* the chaotic phase: a transient "no workers available" (both shards in
     quarantine at once) is retried — at-least-once, duplicates are free *)
  let rec add_retry payload tries =
    match Coordinator.add coord ~name ~payload with
    | Ok () -> ()
    | Error _ when tries > 0 ->
      Thread.delay 0.05;
      add_retry payload (tries - 1)
    | Error e -> Alcotest.failf "seed %d: add never accepted: %s" seed (P.describe_error e)
  in
  List.iter (fun b -> add_retry (payload_of b) 40) boxes;
  (* The event-driven server coalesces every pending ack into one write, so
     a low-probability read-fault menu can see too few socket ops to fire on
     one pass.  Re-drive the stream (duplicates are free) until the menu
     bites — the assertion below is about chaos having run, not about any
     particular pass. *)
  let rounds = ref 0 in
  while
    expect_faults
    && Chaos.injected wchaos + Chaos.injected rchaos = 0
    && !rounds < 10
  do
    incr rounds;
    List.iter (fun b -> add_retry (payload_of b) 40) boxes
  done;
  Chaos.set_enabled wchaos false;
  Chaos.set_enabled rchaos false;
  let injected = Chaos.injected wchaos + Chaos.injected rchaos in
  if expect_faults then
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: chaos actually ran (%d faults)" seed injected)
      true (injected > 0)
  else Alcotest.(check int) (Printf.sprintf "seed %d: transparent" seed) 0 injected;

  (* settle: with the faults off the cluster must reconverge to the exact
     union.  Chaos can have torn payloads out of acknowledged frames (the
     worker rejects the garble, the replay re-ships the real line), so
     convergence may need the lost lines re-driven — duplicates cost
     nothing, silence would mean a hang, an overshoot means corruption got
     past the parse fences. *)
  let rec settle attempt =
    if attempt > 30 then
      Alcotest.failf "seed %d: cluster failed to reconverge on the exact union" seed
    else begin
      Coordinator.flush coord;
      match Coordinator.estimate coord ~name with
      | Ok (est, false, _) when est = tr -> ()
      | result ->
        (match result with
        | Ok (est, _, _) when est > tr +. 0.5 ->
          Alcotest.failf
            "seed %d: estimate %.0f exceeds exact truth %.0f — an invented element"
            seed est tr
        | _ -> ());
        List.iter
          (fun b -> ignore (Coordinator.add coord ~name ~payload:(payload_of b)))
          boxes;
        Thread.delay 0.05;
        settle (attempt + 1)
    end
  in
  settle 0;
  (match Coordinator.stats coord ~name with
  | Ok st ->
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: items cover the stream (%d >= %d)" seed st.P.items
         (List.length boxes))
      true
      (st.P.items >= List.length boxes)
  | Error e -> Alcotest.failf "seed %d: stats: %s" seed (P.describe_error e));
  ignore (Coordinator.close coord ~name);
  Coordinator.shutdown coord;
  List.iter stop_worker workers;
  rm_rf (spool wbase);
  rm_rf (spool (wbase + 1))

(* The CI chaos suite: >= 8 seeds across three fault mixes. *)
let mixed seed =
  ( Chaos.config ~delay_p:0.1 ~max_delay:0.002 ~drop_p:0.04 ~partial_p:0.03
      ~close_p:0.03 ~seed (),
    Chaos.config ~delay_p:0.1 ~max_delay:0.002 ~close_p:0.02 ~corrupt_p:0.05
      ~seed:(seed lxor 0x55) () )

let drop_heavy seed =
  ( Chaos.config ~drop_p:0.15 ~seed (),
    Chaos.config ~seed:(seed lxor 0x55) () )

let corrupt_heavy seed =
  ( Chaos.config ~partial_p:0.04 ~seed (),
    Chaos.config ~close_p:0.03 ~corrupt_p:0.12 ~seed:(seed lxor 0x55) () )

let test_seed mix seed () =
  let write_cfg, read_cfg = mix seed in
  run_seed ~seed ~write_cfg ~read_cfg ~expect_faults:true ()

(* The same gauntlet over wire protocol v2: the chaos [io] hooks sit below
   the binary framing, so a flipped byte lands inside a CRC-protected frame
   and must surface as a typed reject (the worker drops the connection, the
   coordinator quarantines and replays) — never as a desynced stream. *)
let test_seed_v2 mix seed () =
  let write_cfg, read_cfg = mix seed in
  run_seed ~proto:Rpc.V2 ~seed ~write_cfg ~read_cfg ~expect_faults:true ()

let test_transparent () =
  (* all probabilities zero: the wrappers must be invisible *)
  run_seed ~seed:0
    ~write_cfg:(Chaos.config ~seed:1 ())
    ~read_cfg:(Chaos.config ~seed:2 ())
    ~expect_faults:false ()

(* --- unit-level: the wrappers themselves, no sockets --- *)

let test_config_validates () =
  List.iter
    (fun mk ->
      match mk () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "out-of-range config must be rejected")
    [
      (fun () -> Chaos.config ~drop_p:1.5 ~seed:1 ());
      (fun () -> Chaos.config ~corrupt_p:(-0.1) ~seed:1 ());
      (fun () -> Chaos.config ~max_delay:(-1.0) ~seed:1 ());
    ]

(* Same seed, same call sequence => byte-identical fault transcript. *)
let write_transcript ~seed ~enabled =
  let c = Chaos.create (Chaos.config ~drop_p:0.3 ~corrupt_p:0.2 ~seed ()) in
  Chaos.set_enabled c enabled;
  let log = Buffer.create 256 in
  let base _fd s ofs len =
    Buffer.add_string log (String.sub s ofs len);
    Buffer.add_char log '|';
    len
  in
  for i = 0 to 49 do
    let n = Chaos.wrap_write c base Unix.stdin (Printf.sprintf "frame-%02d" i) 0 8 in
    ignore n
  done;
  (Buffer.contents log, Chaos.injected c)

let test_write_determinism () =
  let t1, n1 = write_transcript ~seed:424242 ~enabled:true in
  let t2, n2 = write_transcript ~seed:424242 ~enabled:true in
  Alcotest.(check string) "same seed, same transcript" t1 t2;
  Alcotest.(check int) "same seed, same fault count" n1 n2;
  Alcotest.(check bool) "faults injected" true (n1 > 0);
  Alcotest.(check bool) "drops removed frames from the transcript" true
    (String.length t1 < 50 * 9);
  let t3, _ = write_transcript ~seed:171717 ~enabled:true in
  Alcotest.(check bool) "different seed, different transcript" true (t1 <> t3);
  let t4, n4 = write_transcript ~seed:424242 ~enabled:false in
  Alcotest.(check int) "disabled injects nothing" 0 n4;
  Alcotest.(check bool) "disabled is transparent" true
    (String.length t4 = 50 * 9)

let test_partial_write () =
  let c = Chaos.create (Chaos.config ~partial_p:1.0 ~seed:7 ()) in
  let wrote = ref (-1) in
  let base _fd _s _ofs len =
    wrote := len;
    len
  in
  (match Chaos.wrap_write c base Unix.stdin "0123456789" 0 10 with
  | _ -> Alcotest.fail "partial write must raise EPIPE"
  | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ());
  Alcotest.(check bool)
    (Printf.sprintf "a strict prefix shipped (%d of 10)" !wrote)
    true
    (!wrote >= 1 && !wrote < 10)

let test_drop_write () =
  let c = Chaos.create (Chaos.config ~drop_p:1.0 ~seed:8 ()) in
  let called = ref false in
  let base _fd _s _ofs len =
    called := true;
    len
  in
  Alcotest.(check int) "drop claims the full length" 6
    (Chaos.wrap_write c base Unix.stdin "abcdef" 0 6);
  Alcotest.(check bool) "drop ships nothing" false !called

let test_corrupt_read () =
  let c = Chaos.create (Chaos.config ~corrupt_p:1.0 ~seed:9 ()) in
  let payload = "OKB 12 hello" in
  let base _fd buf ofs _len =
    Bytes.blit_string payload 0 buf ofs (String.length payload);
    String.length payload
  in
  let buf = Bytes.make 32 '#' in
  let k = Chaos.wrap_read c base Unix.stdin buf 4 20 in
  Alcotest.(check int) "length preserved" (String.length payload) k;
  let got = Bytes.sub_string buf 4 k in
  let diffs = ref [] in
  String.iteri
    (fun i ch -> if ch <> payload.[i] then diffs := (i, ch) :: !diffs)
    got;
  (match !diffs with
  | [ (i, ch) ] ->
    Alcotest.(check int) "single bit-5 flip"
      (Char.code payload.[i] lxor 0x20)
      (Char.code ch)
  | _ -> Alcotest.failf "expected exactly one corrupted byte, got %d" (List.length !diffs));
  Alcotest.(check string) "bytes outside the read untouched" "####"
    (Bytes.sub_string buf 0 4)

let suite =
  [
    Alcotest.test_case "config validates" `Quick test_config_validates;
    Alcotest.test_case "seeded write faults are deterministic" `Quick
      test_write_determinism;
    Alcotest.test_case "partial write tears a prefix" `Quick test_partial_write;
    Alcotest.test_case "dropped write ships nothing" `Quick test_drop_write;
    Alcotest.test_case "read corruption flips one byte" `Quick test_corrupt_read;
    Alcotest.test_case "zero-probability chaos is transparent" `Quick test_transparent;
    Alcotest.test_case "seed 11: mixed faults reconverge exactly" `Quick
      (test_seed mixed 11);
    Alcotest.test_case "seed 23: mixed faults reconverge exactly" `Quick
      (test_seed mixed 23);
    Alcotest.test_case "seed 37: mixed faults reconverge exactly" `Quick
      (test_seed mixed 37);
    Alcotest.test_case "seed 41: mixed faults reconverge exactly" `Quick
      (test_seed mixed 41);
    Alcotest.test_case "seed 53: drop-heavy reconverges exactly" `Quick
      (test_seed drop_heavy 53);
    Alcotest.test_case "seed 67: drop-heavy reconverges exactly" `Quick
      (test_seed drop_heavy 67);
    Alcotest.test_case "seed 79: corrupt-heavy reconverges exactly" `Quick
      (test_seed corrupt_heavy 79);
    Alcotest.test_case "seed 97: corrupt-heavy reconverges exactly" `Quick
      (test_seed corrupt_heavy 97);
    Alcotest.test_case "seed 13: v2 mixed faults reconverge exactly" `Quick
      (test_seed_v2 mixed 13);
    Alcotest.test_case "seed 29: v2 corrupt-heavy surfaces as CRC rejects" `Quick
      (test_seed_v2 corrupt_heavy 29);
  ]
