(* Set-expression engine: AST/parser properties (round-trip, precedence,
   error positions) and the sample-and-probe estimator against exact ground
   truth on enumerable universes, for all three families, depths 1-3. *)

module Expr = Delphic_expr.Expr
module Parsers = Delphic_stream.Parsers
module Exact = Delphic_sets.Exact
module Rectangle = Delphic_sets.Rectangle
module Dnf = Delphic_sets.Dnf
module Coverage = Delphic_sets.Coverage
module Bitvec = Delphic_util.Bitvec
module Rng = Delphic_util.Rng

let expr_t =
  Alcotest.testable (fun ppf e -> Format.pp_print_string ppf (Expr.to_string e)) Expr.equal

let parse = Parsers.expr_of_string

(* --- parser: fixed cases --- *)

let leaf n = Expr.Leaf n

let test_parse_precedence () =
  Alcotest.check expr_t "bare leaf" (leaf "A") (parse "A");
  Alcotest.check expr_t "& binds tighter than |"
    (Expr.Union (leaf "A", Expr.Inter (leaf "B", leaf "C")))
    (parse "A | B & C");
  Alcotest.check expr_t "& binds tighter than \\"
    (Expr.Diff (Expr.Inter (leaf "A", leaf "B"), leaf "C"))
    (parse "A & B \\ C");
  Alcotest.check expr_t "additive ops associate left"
    (Expr.Union (Expr.Diff (leaf "A", leaf "B"), leaf "C"))
    (parse "A \\ B | C");
  Alcotest.check expr_t "difference chains left"
    (Expr.Diff (Expr.Diff (leaf "A", leaf "B"), leaf "C"))
    (parse "A \\ B \\ C");
  Alcotest.check expr_t "parens override"
    (Expr.Diff (leaf "A", Expr.Diff (leaf "B", leaf "C")))
    (parse "A \\ (B \\ C)");
  Alcotest.check expr_t "issue example"
    (Expr.Diff (Expr.Inter (leaf "A", leaf "B"), leaf "C"))
    (parse "(A & B) \\ C");
  Alcotest.check expr_t "sym-diff at additive precedence"
    (Expr.Union (Expr.Sym_diff (leaf "A", leaf "B"), leaf "C"))
    (parse "A ^ B | C");
  Alcotest.check expr_t "dotted and dashed names survive"
    (Expr.Inter (leaf "shard-1.us", leaf "shard_2"))
    (parse "  shard-1.us & shard_2  ")

let test_parse_errors () =
  let expect_error text ~at fragment =
    match parse text with
    | e -> Alcotest.failf "%S parsed as %s" text (Expr.to_string e)
    | exception Parsers.Parse_error { line; msg } ->
      Alcotest.(check int) (Printf.sprintf "%S: error column" text) at line;
      let contains =
        let n = String.length msg and k = String.length fragment in
        let rec go i = i + k <= n && (String.sub msg i k = fragment || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S: %S mentions %S" text msg fragment)
        true contains
  in
  expect_error "" ~at:1 "expected a session name";
  expect_error "   " ~at:4 "expected a session name";
  expect_error "&" ~at:1 "expected a session name";
  expect_error "A &" ~at:4 "expected a session name";
  expect_error "A & | B" ~at:5 "expected a session name";
  expect_error "(A & B" ~at:7 "unclosed '(' opened at column 1";
  expect_error "A & (B | " ~at:10 "expected a session name";
  expect_error "A B" ~at:3 "expected an operator";
  expect_error "A ) B" ~at:3 "expected an operator"

let test_ast_helpers () =
  let e = parse "(A & B) \\ C ^ A" in
  Alcotest.(check int) "depth" 3 (Expr.depth e);
  Alcotest.(check (list string)) "leaves, distinct, in order" [ "A"; "B"; "C" ]
    (Expr.leaves e);
  Alcotest.(check int) "leaf depth" 0 (Expr.depth (leaf "A"));
  let lookup = function "A" -> true | "B" -> true | _ -> false in
  Alcotest.(check bool) "eval_bool" true (Expr.eval_bool lookup (parse "(A & B) \\ C"));
  Alcotest.(check bool) "eval_bool sym-diff" false
    (Expr.eval_bool lookup (parse "A ^ B"))

(* --- parser: qcheck properties --- *)

let names = [| "A"; "B"; "C"; "D2"; "x_1.y-z" |]

let gen_expr =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf_gen = map (fun i -> Expr.Leaf names.(i)) (int_bound 4) in
           if n <= 0 then leaf_gen
           else
             let sub = self (n / 2) in
             frequency
               [
                 (1, leaf_gen);
                 (2, map2 (fun a b -> Expr.Union (a, b)) sub sub);
                 (2, map2 (fun a b -> Expr.Inter (a, b)) sub sub);
                 (2, map2 (fun a b -> Expr.Diff (a, b)) sub sub);
                 (2, map2 (fun a b -> Expr.Sym_diff (a, b)) sub sub);
               ]))

let arb_expr = QCheck.make ~print:Expr.to_string gen_expr

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (to_string e) = e" ~count:500 arb_expr (fun e ->
      Expr.equal e (parse (Expr.to_string e)))

let prop_print_parse_print_fixed =
  QCheck.Test.make ~name:"to_string is a fixed point of parse" ~count:200 arb_expr
    (fun e -> String.equal (Expr.to_string e) (Expr.to_string (parse (Expr.to_string e))))

let prop_eval_consistent =
  (* the printed form evaluates identically under every assignment of the
     five leaf names — printing preserves semantics, not just shape *)
  QCheck.Test.make ~name:"printed form keeps the truth table" ~count:100
    (QCheck.pair arb_expr (QCheck.int_bound 31)) (fun (e, bits) ->
      let lookup name =
        let i = ref 0 in
        Array.iteri (fun j n -> if String.equal n name then i := j) names;
        bits land (1 lsl !i) <> 0
      in
      Expr.eval_bool lookup e = Expr.eval_bool lookup (parse (Expr.to_string e)))

(* --- estimator vs exact ground truth ---

   The universe is small enough to enumerate, so for each family we compute
   the exact union, the exact |expr|, and drive Eval with uniform draws from
   the enumerated union and exact membership probes.  The documented
   exact-probe bound is eps_union + sqrt(3 ln(4/delta) / h) with
   probability >= 1 - delta per run; over [n_seeds] independent runs we
   assert every relative error within the bound at the run's observed
   support (allowing the <= delta failure quota) and a much tighter median. *)

let n_seeds = 40
let m_samples = 2048
let delta = 0.05

let percentile sorted p =
  sorted.(min (Array.length sorted - 1) (int_of_float (p *. float_of_int (Array.length sorted))))

(* Run one family's workload: [universe] enumerates every element, [mem]
   probes one leaf.  Returns (errors, bound_violations) across seeds. *)
let run_trials (type elt) ~universe ~(mem : string -> elt -> bool) ~exprs
    ~(estimate :
       expr:Expr.t ->
       union:float ->
       draw:(int -> elt list) ->
       probe:(string -> elt -> float) ->
       exact_probes:bool ->
       samples:int ->
       delta:float ->
       Expr.outcome) =
  let in_union leaves x = List.exists (fun n -> mem n x) leaves in
  List.concat_map
    (fun expr ->
      let leaves = Expr.leaves expr in
      let union_elts =
        Array.of_list (List.filter (in_union leaves) (Array.to_list universe))
      in
      let union = float_of_int (Array.length union_elts) in
      let lookup x name = mem name x in
      let tru =
        float_of_int
          (Array.fold_left
             (fun acc x -> if Expr.eval_bool (lookup x) expr then acc + 1 else acc)
             0 union_elts)
      in
      List.init n_seeds (fun seed ->
          let rng = Rng.create ~seed:(1000 + (7 * seed)) in
          let draw n =
            List.init n (fun _ -> union_elts.(Rng.int rng (Array.length union_elts)))
          in
          let probe name x = if mem name x then 1.0 else 0.0 in
          match
            estimate ~expr ~union ~draw ~probe ~exact_probes:true ~samples:m_samples
              ~delta
          with
          | Expr.Low_support { support; needed; _ } ->
            Alcotest.failf "%s (seed %d): low support %.1f < %.1f — workload too thin"
              (Expr.to_string expr) seed support needed
          | Expr.Estimate { value; support; quality; _ } ->
            if quality <> Expr.Exact_probes then
              Alcotest.failf "%s: expected exact probes" (Expr.to_string expr);
            let err = if tru = 0.0 then Float.abs value else Float.abs (value -. tru) /. tru in
            let bound = sqrt (3.0 *. log (4.0 /. delta) /. support) in
            (err, err > bound)))
    exprs

let check_trials name trials =
  let errs = Array.of_list (List.map fst trials) in
  Array.sort compare errs;
  let violations = List.length (List.filter snd trials) in
  let quota =
    (* per-run failure probability is delta; leave slack for discreteness *)
    int_of_float (ceil (2.0 *. delta *. float_of_int (List.length trials)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d/%d runs exceed the documented bound (quota %d)" name
       violations (List.length trials) quota)
    true (violations <= quota);
  let med = percentile errs 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: median relative error %.3f <= 0.15" name med)
    true (med <= 0.15)

(* depth 1, 2, 3 over three leaves *)
let depth_exprs =
  [ parse "A | B"; parse "A & B"; parse "A \\ B"; parse "(A & B) \\ C";
    parse "(A | B) ^ C"; parse "((A | B) & C) ^ A" ]

module REval = Expr.Eval (Rectangle)

let test_eval_rect () =
  let side = 24 in
  let universe =
    Array.init (side * side) (fun i -> [| i mod side; i / side |])
  in
  let gen = Rng.create ~seed:9 in
  let boxes () =
    List.init 8 (fun _ ->
        let x0 = Rng.int gen side and y0 = Rng.int gen side in
        let w = 2 + Rng.int gen 9 and h = 2 + Rng.int gen 9 in
        Rectangle.create ~lo:[| x0; y0 |]
          ~hi:[| min (side - 1) (x0 + w); min (side - 1) (y0 + h) |])
  in
  let sets = [ ("A", boxes ()); ("B", boxes ()); ("C", boxes ()) ] in
  let mem name p = Exact.rectangle_union_mem (List.assoc name sets) p in
  check_trials "rect"
    (run_trials ~universe ~mem ~exprs:depth_exprs ~estimate:REval.estimate)

module DEval = Expr.Eval (Dnf)

let test_eval_dnf () =
  let nvars = 10 in
  let universe =
    Array.init (1 lsl nvars) (fun v ->
        Bitvec.of_string
          (String.init nvars (fun i -> if v land (1 lsl i) <> 0 then '1' else '0')))
  in
  let gen = Rng.create ~seed:21 in
  let terms () =
    List.init 5 (fun _ ->
        let v1 = Rng.int gen nvars in
        let v2 = (v1 + 1 + Rng.int gen (nvars - 1)) mod nvars in
        Dnf.create ~nvars
          [
            { Dnf.var = v1; positive = Rng.int gen 2 = 0 };
            { Dnf.var = v2; positive = Rng.int gen 2 = 0 };
          ])
  in
  let sets = [ ("A", terms ()); ("B", terms ()); ("C", terms ()) ] in
  let mem name v = Exact.dnf_union_mem (List.assoc name sets) v in
  check_trials "dnf"
    (run_trials ~universe ~mem ~exprs:depth_exprs ~estimate:DEval.estimate)

module CEval = Expr.Eval (Coverage)

let test_eval_cov () =
  let nbits = 8 and strength = 2 in
  (* universe: every (position pair, 2-bit pattern) *)
  let universe =
    Array.of_list
      (List.concat_map
         (fun i ->
           List.concat_map
             (fun j ->
               List.map
                 (fun p ->
                   {
                     Coverage.positions = [| i; j |];
                     pattern =
                       Bitvec.of_string
                         (String.init 2 (fun b -> if p land (1 lsl b) <> 0 then '1' else '0'));
                   })
                 [ 0; 1; 2; 3 ])
             (List.init (nbits - i - 1) (fun d -> i + d + 1)))
         (List.init nbits Fun.id))
  in
  let gen = Rng.create ~seed:33 in
  let vectors () =
    List.init 4 (fun _ ->
        Bitvec.of_string
          (String.init nbits (fun _ -> if Rng.int gen 2 = 0 then '0' else '1')))
  in
  let sets = [ ("A", vectors ()); ("B", vectors ()); ("C", vectors ()) ] in
  let mem name e = Exact.coverage_union_mem ~strength (List.assoc name sets) e in
  check_trials "cov"
    (run_trials ~universe ~mem ~exprs:depth_exprs ~estimate:CEval.estimate)

(* --- estimator edge cases --- *)

let test_eval_edges () =
  let no_draw _ = [] in
  let no_probe _ _ = 0.0 in
  (* empty union decides everything *)
  (match
     REval.estimate ~expr:(parse "A & B") ~union:0.0 ~draw:no_draw ~probe:no_probe
       ~exact_probes:true ~samples:64 ~delta:0.1
   with
  | Expr.Estimate { value; _ } -> Alcotest.(check (float 0.0)) "empty union" 0.0 value
  | Expr.Low_support _ -> Alcotest.fail "empty union must answer 0");
  (* disjoint leaves: A & B finds no evidence -> Low_support, not 0-with-a-face *)
  let universe = Array.init 100 (fun i -> [| i; 0 |]) in
  let mem name (p : int array) = if name = "A" then p.(0) < 50 else p.(0) >= 50 in
  let rng = Rng.create ~seed:5 in
  let draw n = List.init n (fun _ -> universe.(Rng.int rng 100)) in
  let probe name x = if mem name x then 1.0 else 0.0 in
  (match
     REval.estimate ~expr:(parse "A & B") ~union:100.0 ~draw ~probe
       ~exact_probes:true ~samples:256 ~delta:0.1
   with
  | Expr.Low_support { support; needed; _ } ->
    Alcotest.(check (float 0.0)) "no evidence at all" 0.0 support;
    Alcotest.(check bool) "needed is min_support" true
      (needed = Expr.min_support ~delta:0.1)
  | Expr.Estimate { value; _ } ->
    Alcotest.failf "disjoint intersection certified %.2f" value);
  (* the leaf cap *)
  let wide =
    List.fold_left
      (fun acc i -> Expr.Union (acc, leaf (Printf.sprintf "s%d" i)))
      (leaf "s0")
      (List.init Expr.max_leaves (fun i -> i + 1))
  in
  (match
     REval.estimate ~expr:wide ~union:1.0 ~draw ~probe ~exact_probes:true ~samples:8
       ~delta:0.1
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "13 leaves must be refused");
  match
    REval.estimate ~expr:(parse "A") ~union:1.0 ~draw ~probe ~exact_probes:true
      ~samples:0 ~delta:0.1
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "samples = 0 must be refused"

(* --- sketch regime: the stratified estimator through real sketches ---

   Drawing from a sketch merged from the probed leaves would share coins
   with the probes and bias intersections several-fold high (observed ~4.4x
   before the estimator was stratified), so the sketch path draws from each
   leaf's own bucket and importance-corrects by 1/multiplicity.  Sessions
   flip independent coins, so the cross-leaf probes are unbiased and the
   20-run mean should land close to the exact intersection. *)

module RA = Delphic_core.Adaptive.Make (Rectangle)

let test_eval_sketch_probes () =
  let side = 200 in
  let gen = Rng.create ~seed:13 in
  let boxes n =
    List.init n (fun _ ->
        let x0 = Rng.int gen side and y0 = Rng.int gen side in
        let w = 3 + Rng.int gen 20 and h = 3 + Rng.int gen 20 in
        Rectangle.create ~lo:[| x0; y0 |]
          ~hi:[| min (side - 1) (x0 + w); min (side - 1) (y0 + h) |])
  in
  let set_a = boxes 60 and set_b = boxes 60 in
  (* a tiny exact budget forces both sessions into the sketch regime *)
  let session seed bs =
    let t =
      RA.create ~exact_capacity:32 ~epsilon:0.15 ~delta:0.1 ~log2_universe:16.0 ~seed ()
    in
    List.iter (RA.process t) bs;
    t
  in
  let a = session 71 set_a and b = session 72 set_b in
  Alcotest.(check bool) "A sketching" false (RA.is_exact a);
  let ests = [ ("A", a); ("B", b) ] in
  let errs =
    List.init 20 (fun i ->
        match
          REval.estimate_stratified ~expr:(parse "A & B")
            ~leaf_sizes:(List.map (fun (n, e) -> (n, RA.estimate e)) ests)
            ~draw_leaf:(fun name n -> RA.sample_union_n (List.assoc name ests) n)
            ~probe:(fun name x -> RA.probe_weight (List.assoc name ests) x)
            ~samples:(2048 + i) ~delta:0.1
        with
        | Expr.Estimate { value; quality; _ } ->
          Alcotest.(check bool) (Printf.sprintf "run %d: sketch quality" i) true
            (quality = Expr.Sketch_probes);
          Some value
        | Expr.Low_support _ -> None)
  in
  let vals = List.filter_map Fun.id errs in
  Alcotest.(check bool) "most runs certify" true (List.length vals >= 15);
  let mean = List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals) in
  let tru =
    let inter = ref 0 in
    for x = 0 to side - 1 do
      for y = 0 to side - 1 do
        let p = [| x; y |] in
        if Exact.rectangle_union_mem set_a p && Exact.rectangle_union_mem set_b p then
          incr inter
      done
    done;
    float_of_int !inter
  in
  (* stratified draws + HT probes are unbiased but noisy; the mean of 20
     runs through real sketches should land well inside a loose envelope *)
  Alcotest.(check bool)
    (Printf.sprintf "sketch-probe mean %.0f within 40%% of %.0f" mean tru)
    true
    (Float.abs (mean -. tru) <= 0.40 *. tru)

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_print_parse_print_fixed; prop_eval_consistent ]

let suite =
  [
    Alcotest.test_case "parser precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser error positions" `Quick test_parse_errors;
    Alcotest.test_case "AST helpers" `Quick test_ast_helpers;
    Alcotest.test_case "eval vs exact: rect" `Quick test_eval_rect;
    Alcotest.test_case "eval vs exact: dnf" `Quick test_eval_dnf;
    Alcotest.test_case "eval vs exact: coverage" `Quick test_eval_cov;
    Alcotest.test_case "eval edge cases" `Quick test_eval_edges;
    Alcotest.test_case "sketch-regime HT probes" `Quick test_eval_sketch_probes;
  ]
  @ qcheck_suite
