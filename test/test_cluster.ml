(* Loopback end-to-end test of the sharded cluster: three real worker
   servers, a real coordinator, real sockets.  Streams a rect workload
   through the scatter path, checks the gathered estimate against exact
   truth, then kills a worker mid-stream and checks the cluster keeps
   answering — flagged degraded, still inside the envelope. *)

module Server = Delphic_server.Server
module Wal = Delphic_server.Wal
module P = Delphic_server.Protocol
module Registry = Delphic_server.Registry
module Coordinator = Delphic_cluster.Coordinator
module Frontend = Delphic_cluster.Frontend
module Rng = Delphic_util.Rng
module Bigint = Delphic_util.Bigint
module Rectangle = Delphic_sets.Rectangle
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload

let spool n =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "delphic-cluster-spool-%d-%d" (Unix.getpid ()) n)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* DELPHIC_TEST_DOMAINS=N runs every worker in this suite sharded across N
   event-loop domains (CI exercises 4); unset/1 keeps the single-loop
   layout the rest of the matrix uses. *)
let test_domains =
  match int_of_string_opt (try Sys.getenv "DELPHIC_TEST_DOMAINS" with Not_found -> "") with
  | Some d when d > 1 -> d
  | _ -> 1

let start_worker n ~seed =
  rm_rf (spool n);
  let s = Server.create ~port:0 ~spool:(spool n) ~seed ~domains:test_domains () in
  let th = Server.start s in
  (s, th)

let stop_worker (s, th) =
  Server.request_stop s;
  Thread.join th

let payload_of box =
  let lo = Rectangle.lo box and hi = Rectangle.hi box in
  let b = Buffer.create 32 in
  Array.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (Printf.sprintf "%d %d" l hi.(i)))
    lo;
  Buffer.contents b

let truth boxes = Bigint.to_float (Exact.rectangle_union boxes)

let check_close name est t =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.0f within tolerance of %.0f" name est t)
    true
    (Float.abs (est -. t) <= 0.3 *. t)

let ok = function
  | Ok v -> v
  | Error e ->
    Alcotest.failf "unexpected error: %s"
      (P.render_response (P.Error_reply e))

let test_scatter_gather_failover () =
  let workers = List.init 3 (fun n -> start_worker n ~seed:(100 + n)) in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let coord =
    Coordinator.create ~sharding:Coordinator.By_hash ~timeout:5.0
      ~backoff:0.01 ~workers:addrs ~seed:4242 ()
  in
  let gen = Rng.create ~seed:31 in
  let first =
    Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count:300
      ~max_side:400
  in
  let rest =
    Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count:120
      ~max_side:400
  in
  ok
    (Coordinator.open_session coord ~name:"e2e" ~family:P.Rect ~epsilon:0.2
       ~delta:0.1 ~log2_universe:34.0);
  Alcotest.(check int) "all workers reached by OPEN" 3
    (Coordinator.live_workers coord);

  (* phase 1: a duplicate-heavy stream sharded across three live workers *)
  let stream = Workload.Orders.bursty ~copies:20 first in
  List.iter
    (fun b -> ok (Coordinator.add coord ~name:"e2e" ~payload:(payload_of b)))
    stream;
  let est, degraded, _ = ok (Coordinator.estimate coord ~name:"e2e") in
  Alcotest.(check bool) "not degraded with all workers up" false degraded;
  check_close "phase 1" est (truth first);

  let st = ok (Coordinator.stats coord ~name:"e2e") in
  Alcotest.(check int) "every add accounted for" (List.length stream)
    st.P.items;

  (* kill the middle worker; its sketch survives as the coordinator's
     last good snapshot from the phase-1 gather *)
  stop_worker (List.nth workers 1);
  List.iter
    (fun b -> ok (Coordinator.add coord ~name:"e2e" ~payload:(payload_of b)))
    (Workload.Orders.bursty ~copies:10 rest);
  let est2, degraded2, _ = ok (Coordinator.estimate coord ~name:"e2e") in
  Alcotest.(check bool) "degraded after losing a worker" true degraded2;
  check_close "phase 2" est2 (truth (first @ rest));

  (* the folded sketch round-trips as one wire token: cluster-of-clusters *)
  let encoded = ok (Coordinator.fetch coord ~name:"e2e") in
  Alcotest.(check bool) "sketch is one space-free token" true
    (String.length encoded > 0
    && not (String.exists (fun c -> c = ' ' || c = '\n') encoded));

  (* a sketch built outside the pool joins the union through MERGE *)
  let extra =
    Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count:120
      ~max_side:400
  in
  let outsider, oth = start_worker 3 ~seed:555 in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port outsider));
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let rpc line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  Alcotest.(check string) "outsider open" "OK opened e2e"
    (rpc "OPEN e2e rect 0.2 0.1 34");
  List.iter (fun b -> ignore (rpc ("ADD e2e " ^ payload_of b))) extra;
  let sketch = rpc "SNAPSHOT e2e" in
  Alcotest.(check bool) "outsider sketch" true
    (String.length sketch > 7 && String.sub sketch 0 7 = "SKETCH ");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  stop_worker (outsider, oth);
  rm_rf (spool 3);
  let token = String.sub sketch 7 (String.length sketch - 7) in
  ok (Coordinator.merge_in coord ~name:"e2e" ~encoded:token);
  let est3, _, _ = ok (Coordinator.estimate coord ~name:"e2e") in
  check_close "external sketch folded in" est3 (truth (first @ rest @ extra));

  ok (Coordinator.close coord ~name:"e2e");
  Coordinator.shutdown coord;
  stop_worker (List.nth workers 0);
  stop_worker (List.nth workers 2);
  List.iteri (fun n _ -> rm_rf (spool n)) workers

(* Mid-stream worker kill during batched scatter must lose no acked set.
   Small exact-regime sessions make the check sharp: every worker sketch
   stays an exact element list and the folded estimate equals the exact
   union, so a single dropped set would show as a wrong count, not as
   tolerable noise.  A small batch/window forces many partially-filled
   frames across the kill boundary. *)
let test_batched_kill_no_loss () =
  let workers = List.init 2 (fun n -> start_worker (20 + n) ~seed:(300 + n)) in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let coord =
    Coordinator.create ~timeout:5.0 ~backoff:0.01 ~batch:8 ~window:32
      ~workers:addrs ~seed:99 ()
  in
  let gen = Rng.create ~seed:77 in
  let first =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count:30 ~max_side:6
  in
  let rest =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count:30 ~max_side:6
  in
  ok
    (Coordinator.open_session coord ~name:"nl" ~family:P.Rect ~epsilon:0.3
       ~delta:0.2 ~log2_universe:17.0);
  List.iter
    (fun b -> ok (Coordinator.add coord ~name:"nl" ~payload:(payload_of b)))
    first;
  (* the gather inside estimate acks every frame and stores each worker's
     last good sketch — the state the kill must not claw back *)
  let est1, degraded1, _ = ok (Coordinator.estimate coord ~name:"nl") in
  Alcotest.(check bool) "clean before the kill" false degraded1;
  Alcotest.(check (float 0.0)) "exact union before the kill" (truth first) est1;
  stop_worker (List.nth workers 0);
  List.iter
    (fun b -> ok (Coordinator.add coord ~name:"nl" ~payload:(payload_of b)))
    rest;
  let est2, degraded2, _ = ok (Coordinator.estimate coord ~name:"nl") in
  Alcotest.(check bool) "degraded after the kill" true degraded2;
  Alcotest.(check (float 0.0)) "no acked set lost" (truth (first @ rest)) est2;
  ignore (Coordinator.close coord ~name:"nl");
  Coordinator.shutdown coord;
  stop_worker (List.nth workers 1);
  List.iteri (fun n _ -> rm_rf (spool (20 + n))) workers

let wait_for ~timeout msg pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match pred () with
    | Some v -> v
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.fail msg
      else begin
        Thread.delay 0.02;
        go ()
      end
  in
  go ()

(* Cluster-wide WIN: the coordinator computes one absolute cutoff and ships
   it in every worker's Fetch, so all three shards expire against the same
   instant — exact-regime content makes agreement a count equality, not a
   tolerance check.  After a mid-ingest kill the gather answers DEGRADED
   from the victim's last good (full) sketch, and that fallback must be
   re-windowed coordinator-side: a stale sketch honoring the cutoff
   contributes nothing old, so the degraded answer still equals the exact
   suffix union. *)
let test_win_cluster_kill () =
  let workers = List.init 3 (fun n -> start_worker (40 + n) ~seed:(500 + n)) in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let coord =
    Coordinator.create ~timeout:5.0 ~backoff:0.01 ~batch:8 ~window:32
      ~workers:addrs ~seed:808 ()
  in
  let gen = Rng.create ~seed:91 in
  let boxes count =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count ~max_side:6
  in
  let first = boxes 30 and rest = boxes 30 and late = boxes 20 in
  ok
    (Coordinator.open_session coord ~name:"w" ~family:P.Rect ~epsilon:0.3
       ~delta:0.2 ~log2_universe:17.0);
  (* timestamped ingest: [first] spans t in [10, 40), [rest] t in [100, 130),
     [late] t in [200, 220) — three bands with clean gaps to cut between *)
  let ingest ~t0 bs =
    List.iteri
      (fun i b ->
        ok
          (Coordinator.add coord ~name:"w"
             ~ts:(t0 +. float_of_int i)
             ~payload:(payload_of b)))
      bs
  in
  ingest ~t0:10.0 first;
  let est1, degraded1, _ = ok (Coordinator.estimate coord ~name:"w") in
  Alcotest.(check bool) "clean before the kill" false degraded1;
  Alcotest.(check (float 0.0)) "full gather exact" (truth first) est1;
  ingest ~t0:100.0 rest;
  (* one cutoff, three shards: the suffix union is exact only if every
     worker expired against the same instant *)
  let w1, d1, _ = ok (Coordinator.win coord ~name:"w" ~seconds:60.0 ~at:(Some 130.0)) in
  Alcotest.(check bool) "windowed gather clean" false d1;
  Alcotest.(check (float 0.0)) "WIN 60 = exact suffix union" (truth rest) w1;
  let w2, _, _ = ok (Coordinator.win coord ~name:"w" ~seconds:125.0 ~at:(Some 130.0)) in
  Alcotest.(check (float 0.0)) "WIN covering both bands" (truth (first @ rest)) w2;
  let w3, _, _ = ok (Coordinator.win coord ~name:"w" ~seconds:infinity ~at:None) in
  Alcotest.(check (float 0.0)) "WIN inf = EST" est1 est1;
  Alcotest.(check (float 0.0)) "WIN inf folds everything" (truth (first @ rest)) w3;
  (* repeated query at the same instant is stable: same cutoff, same memo *)
  let w1', _, _ = ok (Coordinator.win coord ~name:"w" ~seconds:60.0 ~at:(Some 130.0)) in
  Alcotest.(check (float 0.0)) "repeat WIN identical" w1 w1';
  (* kill a worker mid-ingest of the third band *)
  let half = List.filteri (fun i _ -> i < 10) late in
  let other = List.filteri (fun i _ -> i >= 10) late in
  ingest ~t0:200.0 half;
  (* a full gather before the kill: these workers run without a journal, so
     the victim's acked sets survive only as the coordinator's last good
     sketch — which this estimate stores (windowed gathers never do) *)
  ignore (ok (Coordinator.estimate coord ~name:"w"));
  let whalf, dh, _ = ok (Coordinator.win coord ~name:"w" ~seconds:80.0 ~at:(Some 240.0)) in
  Alcotest.(check bool) "clean mid-band gather" false dh;
  Alcotest.(check (float 0.0)) "WIN mid-band exact" (truth half) whalf;
  stop_worker (List.nth workers 1);
  ingest ~t0:210.0 other;
  (* the victim's staged payloads re-route to live workers on the flushes
     that discover the dead connection; drive flushes until the degraded
     windowed answer has absorbed them all *)
  let wd =
    wait_for ~timeout:10.0 "degraded WIN never absorbed the re-routed sets"
      (fun () ->
        Coordinator.flush coord;
        match Coordinator.win coord ~name:"w" ~seconds:80.0 ~at:(Some 240.0) with
        | Ok (v, true, _) when v = truth late -> Some v
        | Ok _ | Error _ -> None)
  in
  (* cutoff 160: only the [late] band survives.  The victim's fallback is
     its last good FULL sketch (first @ rest @ half) — were it not
     re-windowed, [wd] would overshoot by the victim's old shard *)
  Alcotest.(check (float 0.0)) "DEGRADED answer honors the cutoff" (truth late) wd;
  let wall, degraded_all, _ =
    ok (Coordinator.win coord ~name:"w" ~seconds:infinity ~at:None)
  in
  Alcotest.(check bool) "full window still degraded" true degraded_all;
  Alcotest.(check (float 0.0)) "no acked set lost across the kill"
    (truth (first @ rest @ late)) wall;
  ignore (Coordinator.close coord ~name:"w");
  Coordinator.shutdown coord;
  stop_worker (List.nth workers 0);
  stop_worker (List.nth workers 2);
  List.iteri (fun n _ -> rm_rf (spool (40 + n))) workers

(* The overlapped gather gives the whole collect phase ONE shared deadline:
   slow workers burn it concurrently, so the gather costs max-of-workers,
   not sum.  Four workers served by Frontend-wrapped registries; two of
   them sleep past the timeout on Fetch.  A serial per-worker collect would
   take >= 2 timeouts; the shared deadline takes ~1.  Exact-regime equality
   proves the answer fell back to the slow workers' last good sketches, and
   a later quiet gather proves they rejoin undegraded. *)
let test_slow_workers_share_one_deadline () =
  let slow = Atomic.make false in
  let workers =
    List.init 4 (fun n ->
        let reg = Registry.create ~seed:(700 + n) () in
        let dispatch req =
          (match req with
          | P.Fetch _ when n < 2 && Atomic.get slow -> Thread.delay 1.0
          | _ -> ());
          Registry.dispatch reg req
        in
        let fe = Frontend.create ~port:0 ~dispatch () in
        (fe, Frontend.start fe))
  in
  let addrs = List.map (fun (fe, _) -> ("127.0.0.1", Frontend.port fe)) workers in
  let timeout = 0.4 in
  let coord =
    Coordinator.create ~timeout ~backoff:0.01 ~workers:addrs ~seed:1234 ()
  in
  let gen = Rng.create ~seed:55 in
  let boxes =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count:40 ~max_side:6
  in
  ok
    (Coordinator.open_session coord ~name:"slow" ~family:P.Rect ~epsilon:0.3
       ~delta:0.2 ~log2_universe:17.0);
  List.iter
    (fun b -> ok (Coordinator.add coord ~name:"slow" ~payload:(payload_of b)))
    boxes;
  (* the clean gather stores every worker's sketch as its last good *)
  let est1, degraded1, _ = ok (Coordinator.estimate coord ~name:"slow") in
  Alcotest.(check bool) "clean gather not degraded" false degraded1;
  Alcotest.(check (float 0.0)) "clean gather exact" (truth boxes) est1;

  Atomic.set slow true;
  let t0 = Unix.gettimeofday () in
  let est2, degraded2, _ = ok (Coordinator.estimate coord ~name:"slow") in
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set slow false;
  Alcotest.(check bool) "degraded with slow workers" true degraded2;
  Alcotest.(check (float 0.0)) "last-good sketches used" (truth boxes) est2;
  Alcotest.(check bool)
    (Printf.sprintf "two slow workers cost one shared deadline (%.2fs < %.2fs)"
       elapsed (1.8 *. timeout))
    true
    (elapsed < 1.8 *. timeout);

  (* quarantine expires, the workers kept their sessions: quiet again.
     The frontends are single-threaded event loops, so each slow worker's
     loop stays inside its 1.0s sleeping dispatch until the sleep ends —
     wait it out (plus the 0.1s quarantine margin) before re-querying. *)
  Thread.delay (max 0.1 (1.0 -. elapsed +. 0.2));
  let est3, degraded3, _ = ok (Coordinator.estimate coord ~name:"slow") in
  Alcotest.(check bool) "recovered after quarantine" false degraded3;
  Alcotest.(check (float 0.0)) "recovered exact" (truth boxes) est3;

  (* the merge tree folds the same answer however many domains share it *)
  let coord1 =
    Coordinator.create ~timeout ~gather_domains:1 ~workers:addrs ~seed:1234 ()
  in
  ok
    (Coordinator.open_session coord1 ~name:"slow" ~family:P.Rect ~epsilon:0.3
       ~delta:0.2 ~log2_universe:17.0);
  let est4, _, _ = ok (Coordinator.estimate coord1 ~name:"slow") in
  Alcotest.(check (float 0.0)) "serial fold = parallel fold" est2 est4;
  Coordinator.shutdown coord1;
  Coordinator.shutdown coord;
  List.iter
    (fun (fe, th) ->
      Frontend.request_stop fe;
      Thread.join th)
    workers

(* The same line protocol end to end: a Frontend serving
   Coordinator.dispatch over TCP, exercised with a raw socket like any
   client would — including the UNSUPPORTED-verb reply. *)
let test_frontend_protocol () =
  let workers = List.init 2 (fun n -> start_worker (10 + n) ~seed:(200 + n)) in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let coord = Coordinator.create ~timeout:5.0 ~workers:addrs ~seed:7 () in
  let fe =
    Frontend.create ~port:0 ~dispatch:(Coordinator.dispatch coord) ()
  in
  let th = Frontend.start fe in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Frontend.port fe));
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let rpc line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  Alcotest.(check string) "ping" "PONG" (rpc "PING");
  Alcotest.(check string) "open" "OK opened c1" (rpc "OPEN c1 rect 0.3 0.2 20");
  Alcotest.(check string) "add" "OK" (rpc "ADD c1 0 9 0 9");
  Alcotest.(check string) "add 2" "OK" (rpc "ADD c1 5 14 0 9");
  Alcotest.(check string) "exact estimate" "EST 150" (rpc "EST c1");
  (* one ADDB frame over the wire: a duplicate box and a new 5x10 strip *)
  Alcotest.(check string) "addb" "OKB 2"
    (rpc "ADDB c1 2 0%209%200%209 15%2019%200%209");
  Alcotest.(check string) "estimate after addb" "EST 200" (rpc "EST c1");
  let reply = rpc "FROB c1" in
  Alcotest.(check string) "unsupported verb" "ERR UNSUPPORTED FROB" reply;
  Alcotest.(check string) "still serving after bad verb" "PONG" (rpc "PING");
  (* SNAPSHOT <sid> gathers; MERGE feeds it back through a worker *)
  let sketch = rpc "SNAPSHOT c1" in
  Alcotest.(check bool)
    (Printf.sprintf "sketch reply (%s)" sketch)
    true
    (String.length sketch > 7 && String.sub sketch 0 7 = "SKETCH ");
  let token = String.sub sketch 7 (String.length sketch - 7) in
  Alcotest.(check string) "merge back" "OK merged into c1"
    (rpc ("MERGE c1 " ^ token));
  Alcotest.(check string) "estimate unchanged by self-merge" "EST 200"
    (rpc "EST c1");
  Alcotest.(check string) "close" "OK closed c1" (rpc "CLOSE c1");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Frontend.request_stop fe;
  Thread.join th;
  Coordinator.shutdown coord;
  List.iter stop_worker workers;
  List.iteri (fun n _ -> rm_rf (spool (10 + n))) workers

(* --- EXPR over a live cluster ----------------------------------------- *)

(* Set-expression queries against three sharded sessions, evaluated
   coordinator-side from the same gathers EST uses.  Small exact-regime
   content keeps every folded leaf an exact table, so [A | B] answers the
   union size exactly (every draw hits) and [(A & B) \ C] carries the
   documented exact-probe bound.  The query runs mid-ingest (C half
   loaded), then again after a worker kill — the degraded flag must agree
   with EST's. *)
let test_expr_cluster () =
  let workers = List.init 3 (fun n -> start_worker (30 + n) ~seed:(400 + n)) in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let coord =
    Coordinator.create ~timeout:5.0 ~backoff:0.01 ~workers:addrs ~seed:17 ()
  in
  let gen = Rng.create ~seed:83 in
  (* content sized so even the three-leaf fold stays inside the exact
     capacity (~2400 at these parameters): sharp exact-regime assertions *)
  let boxes () =
    Workload.Rectangles.uniform gen ~universe:80 ~dim:2 ~count:15 ~max_side:14
  in
  let set_a = boxes () and set_b = boxes () and set_c = boxes () in
  let open_s name =
    ok
      (Coordinator.open_session coord ~name ~family:P.Rect ~epsilon:0.3
         ~delta:0.2 ~log2_universe:17.0)
  in
  List.iter open_s [ "A"; "B"; "C" ];
  let ingest name bs =
    List.iter (fun b -> ok (Coordinator.add coord ~name ~payload:(payload_of b))) bs
  in
  let c_half = List.filteri (fun i _ -> i < 8) set_c in
  let c_rest = List.filteri (fun i _ -> i >= 8) set_c in
  ingest "A" set_a;
  ingest "B" set_b;
  ingest "C" c_half;
  let parse = Delphic_stream.Parsers.expr_of_string in
  (* exact |expr| by grid enumeration over the current leaf contents *)
  let exact_count expr ~c =
    let sets = [ ("A", set_a); ("B", set_b); ("C", c) ] in
    let n = ref 0 in
    for x = 0 to 79 do
      for y = 0 to 79 do
        let p = [| x; y |] in
        let lookup name = Exact.rectangle_union_mem (List.assoc name sets) p in
        if P.Expr_ast.eval_bool lookup expr then incr n
      done
    done;
    float_of_int !n
  in
  (* mid-ingest: C is half loaded, the expression sees its current state *)
  let e_union = parse "A | B" in
  (match ok (Coordinator.expr_query coord ~expr:e_union ~m:(Some 1024)) with
  | P.Expr_ast.Estimate { value; quality; _ }, degraded ->
    Alcotest.(check bool) "union query clean with all workers up" false degraded;
    Alcotest.(check bool) "exact probes" true (quality = P.Expr_ast.Exact_probes);
    (* every union draw is a hit, so the answer is the union size itself *)
    Alcotest.(check (float 0.0)) "A | B answers the exact union"
      (exact_count e_union ~c:c_half) value
  | P.Expr_ast.Low_support _, _ -> Alcotest.fail "A | B cannot lack support");
  let e_deep = parse "(A & B) \\ C" in
  let tol = 0.35 in
  (match ok (Coordinator.expr_query coord ~expr:e_deep ~m:(Some 4096)) with
  | P.Expr_ast.Estimate { value; quality; _ }, degraded ->
    Alcotest.(check bool) "deep query clean" false degraded;
    Alcotest.(check bool) "deep query exact probes" true
      (quality = P.Expr_ast.Exact_probes);
    let tru = exact_count e_deep ~c:c_half in
    Alcotest.(check bool)
      (Printf.sprintf "(A & B) \\ C mid-ingest: %.0f within %.0f%% of %.0f" value
         (100.0 *. tol) tru)
      true
      (Float.abs (value -. tru) <= tol *. tru)
  | P.Expr_ast.Low_support { support; needed; _ }, _ ->
    Alcotest.failf "(A & B) \\ C: low support %.1f < %.1f" support needed);
  (* finish C's ingest, then lose a worker: the gather answers from last
     good snapshots and both EST and EXPR must say so *)
  ingest "C" c_rest;
  (match ok (Coordinator.expr_query coord ~expr:e_deep ~m:(Some 4096)) with
  | P.Expr_ast.Estimate _, degraded ->
    Alcotest.(check bool) "still clean after C completes" false degraded
  | P.Expr_ast.Low_support _, _ -> Alcotest.fail "C complete: support vanished");
  stop_worker (List.nth workers 0);
  let _, est_degraded, _ = ok (Coordinator.estimate coord ~name:"A") in
  Alcotest.(check bool) "EST degraded after the kill" true est_degraded;
  (match ok (Coordinator.expr_query coord ~expr:e_deep ~m:(Some 4096)) with
  | P.Expr_ast.Estimate { value; _ }, degraded ->
    Alcotest.(check bool) "EXPR degraded agrees with EST" est_degraded degraded;
    let tru = exact_count e_deep ~c:set_c in
    Alcotest.(check bool)
      (Printf.sprintf "(A & B) \\ C degraded: %.0f within %.0f%% of %.0f" value
         (100.0 *. tol) tru)
      true
      (Float.abs (value -. tru) <= tol *. tru)
  | P.Expr_ast.Low_support { support; needed; _ }, _ ->
    Alcotest.failf "degraded expr: low support %.1f < %.1f" support needed);
  (* a leaf the cluster has never opened is a clean error *)
  (match Coordinator.expr_query coord ~expr:(parse "A & ghost") ~m:None with
  | Error e ->
    Alcotest.(check string) "unknown leaf" "UNKNOWN-SESSION" (P.error_code e)
  | Ok _ -> Alcotest.fail "ghost leaf must be UNKNOWN-SESSION");
  List.iter (fun n -> ignore (Coordinator.close coord ~name:n)) [ "A"; "B"; "C" ];
  Coordinator.shutdown coord;
  stop_worker (List.nth workers 1);
  stop_worker (List.nth workers 2);
  List.iteri (fun n _ -> rm_rf (spool (30 + n))) workers

(* --- kill -9 against a journaled worker ------------------------------- *)

let rm_rf_deep dir =
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm dir

(* A worker in its own PROCESS, so the parent can kill -9 it: the child
   opens a WAL-backed server, publishes its port through [portfile], and
   serves until killed.  Bind retried briefly — a restart can race the
   kernel reclaiming the predecessor's address.

   The child is a re-exec of this test binary via posix_spawn
   ([Unix.create_process_env]), NOT a [Unix.fork]: the OCaml 5 runtime
   forbids fork for the rest of the process's life once any domain has ever
   been spawned, and with [DELPHIC_TEST_DOMAINS] > 1 every in-process
   server does exactly that.  [maybe_forked_wal_worker] (called from
   test_main before Alcotest takes over) diverts the re-exec'd child into
   worker mode when it sees the spec in its environment. *)
let wal_worker_env = "DELPHIC_WAL_WORKER"

let run_forked_wal_worker spec =
  (match String.split_on_char '|' spec with
  | [ wal_dir; spool_dir; port; seed; portfile ] ->
    let port = int_of_string port and seed = int_of_string seed in
    (try
       let rec create tries =
         match
           Server.create
             ~wal:
               {
                 Server.dir = wal_dir;
                 fsync = Wal.Interval 0.05;
                 checkpoint_every = 4;
                 (* group commit on the kill -9 victim: the recovery check
                    then also covers gated replies and torn group tails *)
                 group = 16;
               }
             ~port ~spool:spool_dir ~seed ~domains:test_domains ()
         with
         | s -> s
         | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) when tries > 0 ->
           Thread.delay 0.1;
           create (tries - 1)
       in
       let s = create 20 in
       let oc = open_out portfile in
       output_string oc (string_of_int (Server.port s));
       output_char oc '\n';
       close_out oc;
       Server.serve s
     with _ -> ())
  | _ -> prerr_endline "malformed DELPHIC_WAL_WORKER spec");
  exit 0

let maybe_forked_wal_worker () =
  match Sys.getenv_opt wal_worker_env with
  | Some spec -> run_forked_wal_worker spec
  | None -> ()

let fork_wal_worker ~wal_dir ~spool_dir ~port ~seed ~portfile =
  let spec =
    Printf.sprintf "%s|%s|%d|%d|%s" wal_dir spool_dir port seed portfile
  in
  let env =
    Array.append (Unix.environment ()) [| wal_worker_env ^ "=" ^ spec |]
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

(* Raw-socket HELLO probe: [Some generation] once the worker answers. *)
let hello_generation port =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> None
  | fd -> (
    let finish r =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r
    in
    try
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
      output_string oc "HELLO\n";
      flush oc;
      match String.split_on_char ' ' (input_line ic) with
      | [ "HELLO"; g ] -> finish (int_of_string_opt g)
      | _ -> finish None
    with Unix.Unix_error _ | Sys_error _ | End_of_file -> finish None)

(* The tentpole end to end: a journaled worker is killed with SIGKILL mid
   conversation and restarted on the same port; the coordinator's HELLO
   fence sees the new generation and re-drives; the WAL replay hands back
   every acknowledged set.  Exact-regime equality makes the recovery check
   sharp: the estimate is a count, one lost set = wrong answer.  Crucially
   no gather runs before the kill, so the coordinator holds no last-good
   sketch for the victim — the recovered state can only have come from the
   checkpoint + journal on disk. *)
let test_kill9_wal_recovery () =
  let tmp = Filename.get_temp_dir_name () in
  let wal_dir = Filename.concat tmp (Printf.sprintf "delphic-wal-e2e-%d" (Unix.getpid ())) in
  let spool_dir = Filename.concat tmp (Printf.sprintf "delphic-wal-e2e-spool-%d" (Unix.getpid ())) in
  let portfile = Filename.concat tmp (Printf.sprintf "delphic-wal-e2e-port-%d" (Unix.getpid ())) in
  rm_rf_deep wal_dir;
  rm_rf_deep spool_dir;
  if Sys.file_exists portfile then Sys.remove portfile;
  (* the victim forks FIRST, before this test owns any thread *)
  let pid_a = fork_wal_worker ~wal_dir ~spool_dir ~port:0 ~seed:4000 ~portfile in
  let port =
    wait_for ~timeout:10.0 "forked worker never published its port" (fun () ->
        match open_in portfile with
        | exception Sys_error _ -> None
        | ic ->
          let r = try int_of_string_opt (input_line ic) with End_of_file -> None in
          close_in_noerr ic;
          r)
  in
  let gen_a =
    wait_for ~timeout:10.0 "forked worker never answered HELLO" (fun () ->
        hello_generation port)
  in
  Alcotest.(check bool) "journal generations count from 1" true (gen_a >= 1);
  (* a journal-less sibling: its ephemeral generation must not look like a
     journal epoch *)
  let sibling, sibling_th = start_worker 30 ~seed:4100 in
  Alcotest.(check bool) "ephemeral generation carries the high bit" true
    (Server.generation sibling land 0x40000000 <> 0);
  let coord =
    Coordinator.create ~timeout:2.0 ~backoff:0.01 ~batch:8 ~window:32
      ~workers:[ ("127.0.0.1", port); ("127.0.0.1", Server.port sibling) ]
      ~seed:606 ()
  in
  let gen = Rng.create ~seed:42 in
  let first =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count:30 ~max_side:6
  in
  let rest =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count:30 ~max_side:6
  in
  ok
    (Coordinator.open_session coord ~name:"crash" ~family:P.Rect ~epsilon:0.3
       ~delta:0.2 ~log2_universe:17.0);
  List.iter
    (fun b -> ok (Coordinator.add coord ~name:"crash" ~payload:(payload_of b)))
    first;
  (* every phase-1 set acked — and, by the WAL contract, journaled — but
     deliberately never gathered *)
  Coordinator.flush coord;

  Unix.kill pid_a Sys.sigkill;
  ignore (Unix.waitpid [] pid_a);
  let pid_b = fork_wal_worker ~wal_dir ~spool_dir ~port ~seed:4001 ~portfile in
  let gen_b =
    wait_for ~timeout:10.0 "restarted worker never answered HELLO" (fun () ->
        match hello_generation port with
        | Some g when g <> gen_a -> Some g
        | _ -> None)
  in
  Alcotest.(check bool)
    (Printf.sprintf "the fence sees a new epoch (%d -> %d)" gen_a gen_b)
    true (gen_b > gen_a);

  List.iter
    (fun b -> ok (Coordinator.add coord ~name:"crash" ~payload:(payload_of b)))
    rest;
  (* the coordinator notices the dead connection on first use, re-routes,
     reconnects behind the HELLO fence and re-drives; give the quarantine a
     few beats to expire before insisting on a clean gather *)
  let est =
    wait_for ~timeout:10.0 "cluster never produced a clean gather" (fun () ->
        Coordinator.flush coord;
        match Coordinator.estimate coord ~name:"crash" with
        | Ok (est, false, _) -> Some est
        | Ok (_, true, _) | Error _ -> None)
  in
  Alcotest.(check (float 0.0)) "kill -9 lost no acknowledged set"
    (truth (first @ rest)) est;
  let st = ok (Coordinator.stats coord ~name:"crash") in
  Alcotest.(check int) "no payload was rejected" 0 st.P.parse_rejects;

  ok (Coordinator.close coord ~name:"crash");
  Coordinator.shutdown coord;
  Unix.kill pid_b Sys.sigkill;
  ignore (Unix.waitpid [] pid_b);
  stop_worker (sibling, sibling_th);
  rm_rf (spool 30);
  rm_rf_deep wal_dir;
  rm_rf_deep spool_dir;
  Sys.remove portfile

let suite =
  [
    Alcotest.test_case "scatter/gather with mid-stream worker loss" `Quick
      test_scatter_gather_failover;
    Alcotest.test_case "batched scatter loses no acked set on worker kill" `Quick
      test_batched_kill_no_loss;
    Alcotest.test_case "WIN agrees across three workers and honors the cutoff when degraded"
      `Quick test_win_cluster_kill;
    Alcotest.test_case "slow workers share one gather deadline" `Quick
      test_slow_workers_share_one_deadline;
    Alcotest.test_case "EXPR over a live cluster with worker loss" `Quick
      test_expr_cluster;
    Alcotest.test_case "frontend speaks the full protocol" `Quick
      test_frontend_protocol;
    Alcotest.test_case "kill -9 mid-stream recovers from the WAL" `Quick
      test_kill9_wal_recovery;
  ]
