(* Replication and warm-standby failover, end to end.  The contract under
   test is the robustness tentpole: with R = 2 replicas per ring position
   and one standby coordinator, the cluster survives the loss of ANY single
   process — worker or coordinator — with no degradation: EST never says
   DEGRADED, and in the exact regime the count matches the fault-free run
   bit for bit.  A deposed primary's late writes die at the workers' epoch
   fence.

   Three fault shapes, each over the chaos suite's 8 seeds (the kill
   schedule — which process, after how many ingest steps — is a seeded
   draw, so every run replays bit-identically):

   - kill a worker mid-ingest (its replica covers the ring position);
   - kill the active coordinator mid-gather (the standby promotes itself
     from worker-sourced state and fences the corpse);
   - partition a worker away, then heal (the black-holed shard is covered
     while unreachable and rejoins afterwards).

   Plus one REAL kill -9: the primary coordinator runs in its own process
   (re-exec'd, same pattern as the WAL kill -9 test), a standby in the
   parent polls its LEASE, SIGKILL lands mid-service, and the standby's
   promoted answers must be exact. *)

module Server = Delphic_server.Server
module P = Delphic_server.Protocol
module Coordinator = Delphic_cluster.Coordinator
module Frontend = Delphic_cluster.Frontend
module Failover = Delphic_cluster.Failover
module Rpc = Delphic_cluster.Rpc
module Chaos = Delphic_harness.Chaos
module Rng = Delphic_util.Rng
module Bigint = Delphic_util.Bigint
module Rectangle = Delphic_sets.Rectangle
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload

let spool n =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "delphic-failover-spool-%d-%d" (Unix.getpid ()) n)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let test_domains =
  match int_of_string_opt (try Sys.getenv "DELPHIC_TEST_DOMAINS" with Not_found -> "") with
  | Some d when d > 1 -> d
  | _ -> 1

let start_worker n ~seed =
  rm_rf (spool n);
  let s = Server.create ~port:0 ~spool:(spool n) ~seed ~domains:test_domains () in
  let th = Server.start s in
  (s, th)

let stop_worker (s, th) =
  Server.request_stop s;
  Thread.join th

let payload_of box =
  let lo = Rectangle.lo box and hi = Rectangle.hi box in
  let b = Buffer.create 32 in
  Array.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (Printf.sprintf "%d %d" l hi.(i)))
    lo;
  Buffer.contents b

let truth boxes = Bigint.to_float (Exact.rectangle_union boxes)

let ok = function
  | Ok v -> v
  | Error e ->
    Alcotest.failf "unexpected error: %s" (P.render_response (P.Error_reply e))

let wait_for ~timeout msg pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match pred () with
    | Some v -> v
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.fail msg
      else begin
        Thread.delay 0.02;
        go ()
      end
  in
  go ()

(* A transient "no workers available" (the victim's ring walk finding only
   quarantined shards) is retried: at-least-once, duplicates are free. *)
let add_retry coord ~name payload =
  let rec go tries =
    match Coordinator.add coord ~name ~payload with
    | Ok () -> ()
    | Error _ when tries > 0 ->
      Thread.delay 0.05;
      go (tries - 1)
    | Error e -> Alcotest.failf "add never accepted: %s" (P.describe_error e)
  in
  go 40

let open_rect coord ~name =
  ok
    (Coordinator.open_session coord ~name ~family:P.Rect ~epsilon:0.3 ~delta:0.2
       ~log2_universe:17.0)

(* Drive flushes until the replicated gather answers the exact union.  The
   replication contract sharpens the chaos suite's settle loop: every
   intermediate answer must already be non-degraded — a single-process
   fault can never starve a ring position of fresh replicas at R = 2. *)
let settle_exact ~ctx coord ~name ~truth:tr =
  let rec go attempt =
    if attempt > 40 then
      Alcotest.failf "%s: never reconverged on the exact union" ctx
    else begin
      Coordinator.flush coord;
      match Coordinator.estimate coord ~name with
      | Ok (est, degraded, stale) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: EST never DEGRADED" ctx)
          false degraded;
        Alcotest.(check (list int))
          (Printf.sprintf "%s: no stale ring position" ctx)
          [] stale;
        if est > tr +. 0.5 then
          Alcotest.failf "%s: estimate %.0f exceeds exact truth %.0f" ctx est tr
        else if est = tr then ()
        else begin
          Thread.delay 0.05;
          go (attempt + 1)
        end
      | Error _ ->
        Thread.delay 0.05;
        go (attempt + 1)
    end
  in
  go 0

let boxes_for seed count =
  Workload.Rectangles.uniform
    (Rng.create ~seed:(31 + seed))
    ~universe:300 ~dim:2 ~count ~max_side:6

(* --- the typed dial timeout ------------------------------------------- *)

(* A listener whose accept queue is already full drops further SYNs, so a
   dial into it hangs exactly like a black-holed host: connect() neither
   completes nor refuses.  The bounded dial must surface the typed
   [Dial_timeout] near its budget instead of blocking a gather. *)
let test_dial_timeout () =
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 0;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "loopback listener has no port"
  in
  let fillers =
    List.init 4 (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.set_nonblock fd;
        (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
         with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ());
        fd)
  in
  Thread.delay 0.05;
  let t0 = Unix.gettimeofday () in
  (match Rpc.connect ~dial_timeout:0.3 ~host:"127.0.0.1" ~port ~timeout:1.0 () with
  | Error (Rpc.Dial_timeout budget) ->
    let dt = Unix.gettimeofday () -. t0 in
    Alcotest.(check (float 0.001)) "the budget rides the error" 0.3 budget;
    Alcotest.(check bool)
      (Printf.sprintf "dial bounded by its budget (%.2fs)" dt)
      true
      (dt >= 0.25 && dt < 1.5)
  | Error (Rpc.Dial_failed msg) ->
    Alcotest.failf "expected a dial timeout, got a dial failure: %s" msg
  | Ok c ->
    Rpc.close c;
    Alcotest.fail "a dial into a full accept queue must not complete");
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fillers;
  Unix.close srv

(* --- epoch fencing, library level -------------------------------------- *)

let test_epoch_monotonic () =
  let w = start_worker 90 ~seed:9000 in
  let addrs = [ ("127.0.0.1", Server.port (fst w)) ] in
  let coord =
    Coordinator.create ~timeout:2.0 ~backoff:0.01 ~epoch:5 ~workers:addrs
      ~seed:5 ()
  in
  open_rect coord ~name:"m";
  (match Coordinator.announce_epoch coord ~epoch:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a decreasing epoch must be rejected");
  Alcotest.(check int) "every live worker stamped" 1
    (Coordinator.announce_epoch coord ~epoch:6);
  Alcotest.(check int) "the coordinator's epoch advances" 6
    (Coordinator.epoch coord);
  (* the worker's fence follows: HELLO now advertises the new epoch *)
  (match
     Rpc.connect ~host:"127.0.0.1" ~port:(Server.port (fst w)) ~timeout:2.0 ()
   with
  | Ok c ->
    (match Rpc.call c P.Hello with
    | Ok (P.Hello_reply { epoch; _ }) ->
      Alcotest.(check int) "worker HELLO carries the fence" 6 epoch
    | Ok r -> Alcotest.failf "HELLO answered %s" (P.render_response r)
    | Error msg -> Alcotest.failf "HELLO failed: %s" msg);
    Rpc.close c
  | Error err -> Alcotest.failf "dial: %s" (Rpc.describe_connect_error err));
  ignore (Coordinator.close coord ~name:"m");
  Coordinator.shutdown coord;
  stop_worker w;
  rm_rf (spool 90)

(* --- the replication chaos matrix -------------------------------------- *)

(* Scenario 1: kill a worker mid-ingest.  With R = 2 every payload lives on
   two distinct ring successors, so the survivor covers the victim's
   position: no gather is ever DEGRADED and the settled count equals the
   exact union — bit for bit what the fault-free run answers. *)
let scenario_kill_worker seed =
  let base = 100 + (seed mod 100) * 3 in
  let workers = List.init 3 (fun i -> start_worker (base + i) ~seed:(7000 + seed + i)) in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let chaos = Chaos.create (Chaos.config ~seed ()) in
  let boxes = boxes_for seed 24 in
  let plan = Chaos.kill_plan chaos ~procs:3 ~steps:(List.length boxes - 1) in
  let coord =
    Coordinator.create ~replicas:2 ~timeout:0.5 ~retries:1 ~backoff:0.01
      ~batch:4 ~window:16 ~workers:addrs ~seed:(77 + seed) ()
  in
  let name = Printf.sprintf "repl-%d" seed in
  open_rect coord ~name;
  List.iteri
    (fun i b ->
      if i = plan.Chaos.after then stop_worker (List.nth workers plan.Chaos.victim);
      add_retry coord ~name (payload_of b))
    boxes;
  settle_exact
    ~ctx:(Printf.sprintf "seed %d: worker %d killed after %d adds" seed
            plan.Chaos.victim plan.Chaos.after)
    coord ~name ~truth:(truth boxes);
  ignore (Coordinator.close coord ~name);
  Coordinator.shutdown coord;
  List.iteri
    (fun i w -> if i <> plan.Chaos.victim then stop_worker w)
    workers;
  List.iteri (fun i _ -> rm_rf (spool (base + i))) workers

(* Scenario 2: kill the active coordinator mid-gather.  The standby's
   takeover rebuilds the session table from the workers' SESSIONS listings,
   announces a dominating epoch, and answers exactly; the deposed
   primary's late writes die at the fence. *)
let scenario_kill_coordinator seed =
  let base = 400 + (seed mod 100) * 2 in
  let workers = List.init 2 (fun i -> start_worker (base + i) ~seed:(8000 + seed + i)) in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let chaos = Chaos.create (Chaos.config ~seed ()) in
  let boxes = boxes_for (seed lxor 0x33) 24 in
  let plan = Chaos.kill_plan chaos ~procs:1 ~steps:(List.length boxes - 1) in
  let primary =
    Coordinator.create ~replicas:2 ~timeout:1.0 ~backoff:0.01 ~batch:4
      ~window:16 ~epoch:1 ~workers:addrs ~seed:(177 + seed) ()
  in
  let standby =
    Coordinator.create ~replicas:2 ~timeout:1.0 ~backoff:0.01 ~batch:4
      ~window:16 ~workers:addrs ~seed:(177 + seed) ()
  in
  (* the lease address is never polled here: the "crash" is simulated and
     the promotion forced, so the schedule stays deterministic *)
  let fo = Failover.create ~primary:("127.0.0.1", 1) ~coord:standby () in
  let name = Printf.sprintf "fo-%d" seed in
  open_rect primary ~name;
  let before = List.filteri (fun i _ -> i < plan.Chaos.after) boxes in
  let after = List.filteri (fun i _ -> i >= plan.Chaos.after) boxes in
  List.iter (fun b -> ok (Coordinator.add primary ~name ~payload:(payload_of b))) before;
  (* the primary's last act is a gather: every acked set reaches a worker *)
  let est1, d1, _ = ok (Coordinator.estimate primary ~name) in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: primary gather clean" seed)
    false d1;
  Alcotest.(check (float 0.0))
    (Printf.sprintf "seed %d: primary exact before the crash" seed)
    (truth before) est1;
  (* the standby contract while the primary lives: queries only *)
  (match Coordinator.add standby ~name ~payload:"0 1 0 1" with
  | Error (P.Read_only _) -> ()
  | Ok () -> Alcotest.failf "seed %d: standby accepted a write" seed
  | Error e ->
    Alcotest.failf "seed %d: standby refused with %s, want READONLY" seed
      (P.error_code e));
  (* the crash: the primary's connections die mid-conversation *)
  Coordinator.shutdown primary;
  Failover.takeover_now fo;
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: standby promoted" seed)
    true (Failover.is_active fo);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: takeover epoch dominates the primary's" seed)
    true
    (Coordinator.epoch standby >= 2);
  (* the promoted standby carries on the same session from worker truth *)
  List.iter (fun b -> add_retry standby ~name (payload_of b)) after;
  settle_exact
    ~ctx:(Printf.sprintf "seed %d: promoted standby" seed)
    standby ~name ~truth:(truth boxes);
  (* the deposed primary reconnects, announces its stale epoch, and is
     fenced before any write lands *)
  (match Coordinator.add primary ~name ~payload:"0 299 0 299" with
  | Ok () -> Alcotest.failf "seed %d: deposed primary's write was accepted" seed
  | Error _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: deposed primary knows it is fenced" seed)
    true
    (Coordinator.is_fenced primary);
  (match Coordinator.add primary ~name ~payload:"0 299 0 299" with
  | Error (P.Fenced e) ->
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: fence epoch %d dominates" seed e)
      true (e >= 2)
  | Ok () -> Alcotest.failf "seed %d: fenced primary still writing" seed
  | Error e ->
    Alcotest.failf "seed %d: want FENCED, got %s" seed (P.error_code e));
  (* and none of those attempts landed: the count is unchanged *)
  settle_exact
    ~ctx:(Printf.sprintf "seed %d: after fenced writes" seed)
    standby ~name ~truth:(truth boxes);
  ignore (Coordinator.close standby ~name);
  Failover.stop fo;
  Coordinator.shutdown standby;
  Coordinator.shutdown primary;
  List.iter stop_worker workers;
  List.iteri (fun i _ -> rm_rf (spool (base + i))) workers

(* Scenario 3: partition a worker away, then heal.  The black hole is
   asymmetric — writes claim success, nothing flows — so the coordinator
   discovers the loss only through missing acks; the victim's ring position
   stays covered by its replica throughout, and after the heal the victim
   rejoins with its pre-partition state intact. *)
let scenario_partition_heal seed =
  let base = 700 + (seed mod 100) * 3 in
  let workers = List.init 3 (fun i -> start_worker (base + i) ~seed:(9000 + seed + i)) in
  let addrs = List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers in
  let ports = List.map snd addrs in
  let chaos = Chaos.create (Chaos.config ~seed ()) in
  let io =
    {
      Rpc.io_read = Chaos.wrap_read chaos Unix.read;
      io_write = Chaos.wrap_write chaos Unix.write_substring;
    }
  in
  let coord =
    Coordinator.create ~replicas:2 ~timeout:0.3 ~retries:1 ~backoff:0.01
      ~batch:4 ~window:16 ~io ~workers:addrs ~seed:(277 + seed) ()
  in
  let name = Printf.sprintf "part-%d" seed in
  let boxes = boxes_for (seed lxor 0x55) 24 in
  let first = List.filteri (fun i _ -> i < 12) boxes in
  let rest = List.filteri (fun i _ -> i >= 12) boxes in
  open_rect coord ~name;
  List.iter (fun b -> ok (Coordinator.add coord ~name ~payload:(payload_of b))) first;
  let plan = Chaos.kill_plan chaos ~procs:3 ~steps:1 in
  Chaos.partition chaos [ List.nth ports plan.Chaos.victim ];
  List.iter (fun b -> add_retry coord ~name (payload_of b)) rest;
  settle_exact
    ~ctx:(Printf.sprintf "seed %d: worker %d partitioned" seed plan.Chaos.victim)
    coord ~name ~truth:(truth boxes);
  Chaos.heal chaos;
  (* traffic resumes across the healed link; the victim rejoins once its
     quarantine lapses and the answer stays exact throughout *)
  let more = boxes_for (seed lxor 0x77) 8 in
  List.iter (fun b -> add_retry coord ~name (payload_of b)) more;
  settle_exact
    ~ctx:(Printf.sprintf "seed %d: healed" seed)
    coord ~name ~truth:(truth (boxes @ more));
  ignore (Coordinator.close coord ~name);
  Coordinator.shutdown coord;
  List.iter stop_worker workers;
  List.iteri (fun i _ -> rm_rf (spool (base + i))) workers

(* --- kill -9 against a live primary coordinator ------------------------ *)

(* The primary coordinator in its own PROCESS (a re-exec of this binary,
   same posix_spawn pattern as the WAL kill -9 test — fork is forbidden
   once any domain has spawned), serving the wire protocol over a
   [Frontend]; the parent runs the workers, a standby, and the lease
   monitor.  SIGKILL mid-service must promote the standby with no loss. *)
let coord_worker_env = "DELPHIC_COORD_WORKER"

let run_forked_coordinator spec =
  (match String.split_on_char '|' spec with
  | [ wports; seed; epoch; portfile ] ->
    (try
       let workers =
         List.map
           (fun p -> ("127.0.0.1", int_of_string p))
           (String.split_on_char ',' wports)
       in
       let coord =
         Coordinator.create ~replicas:2 ~timeout:2.0 ~backoff:0.01
           ~epoch:(int_of_string epoch) ~workers ~seed:(int_of_string seed) ()
       in
       let fe = Frontend.create ~port:0 ~dispatch:(Coordinator.dispatch coord) () in
       let th = Frontend.start fe in
       let oc = open_out portfile in
       output_string oc (string_of_int (Frontend.port fe));
       output_char oc '\n';
       close_out oc;
       Thread.join th
     with _ -> ())
  | _ -> prerr_endline "malformed DELPHIC_COORD_WORKER spec");
  exit 0

let maybe_forked_coordinator () =
  match Sys.getenv_opt coord_worker_env with
  | Some spec -> run_forked_coordinator spec
  | None -> ()

let fork_coordinator ~wports ~seed ~epoch ~portfile =
  let spec =
    Printf.sprintf "%s|%d|%d|%s"
      (String.concat "," (List.map string_of_int wports))
      seed epoch portfile
  in
  let env =
    Array.append (Unix.environment ()) [| coord_worker_env ^ "=" ^ spec |]
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

let test_kill9_coordinator_failover () =
  let tmp = Filename.get_temp_dir_name () in
  let portfile =
    Filename.concat tmp (Printf.sprintf "delphic-coord-e2e-port-%d" (Unix.getpid ()))
  in
  if Sys.file_exists portfile then Sys.remove portfile;
  let workers = List.init 2 (fun i -> start_worker (950 + i) ~seed:(5000 + i)) in
  let wports = List.map (fun (s, _) -> Server.port s) workers in
  let addrs = List.map (fun p -> ("127.0.0.1", p)) wports in
  let pid = fork_coordinator ~wports ~seed:606 ~epoch:1 ~portfile in
  let cport =
    wait_for ~timeout:10.0 "forked coordinator never published its port" (fun () ->
        match open_in portfile with
        | exception Sys_error _ -> None
        | ic ->
          let r = try int_of_string_opt (input_line ic) with End_of_file -> None in
          close_in_noerr ic;
          r)
  in
  let conn =
    wait_for ~timeout:10.0 "forked coordinator never answered HELLO" (fun () ->
        match Rpc.connect ~host:"127.0.0.1" ~port:cport ~timeout:2.0 () with
        | Error _ -> None
        | Ok c -> (
          match Rpc.call c P.Hello with
          | Ok (P.Hello_reply { epoch = 1; _ }) -> Some c
          | _ ->
            Rpc.close c;
            None))
  in
  let standby =
    Coordinator.create ~replicas:2 ~timeout:1.0 ~backoff:0.01 ~workers:addrs
      ~seed:606 ()
  in
  let fo =
    Failover.create ~interval:0.1 ~primary:("127.0.0.1", cport) ~coord:standby ()
  in
  Failover.start fo;
  let gen = Rng.create ~seed:42 in
  let first =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count:30 ~max_side:6
  in
  let rest =
    Workload.Rectangles.uniform gen ~universe:300 ~dim:2 ~count:30 ~max_side:6
  in
  let wire req =
    match Rpc.call conn req with
    | Ok r -> r
    | Error msg -> Alcotest.failf "wire call failed: %s" msg
  in
  (match wire (P.Open
                 {
                   session = "fo";
                   family = P.Rect;
                   epsilon = 0.3;
                   delta = 0.2;
                   log2_universe = 17.0;
                 })
   with
  | P.Ok_reply _ -> ()
  | r -> Alcotest.failf "OPEN answered %s" (P.render_response r));
  List.iter
    (fun b ->
      match wire (P.Add { session = "fo"; payload = payload_of b; ts = None }) with
      | P.Ok_reply _ -> ()
      | r -> Alcotest.failf "ADD answered %s" (P.render_response r))
    first;
  (* the primary's gather flushes every staged set to the workers — the
     state the kill must not claw back *)
  (match wire (P.Est { session = "fo" }) with
  | P.Estimate { value; degraded = false; _ } ->
    Alcotest.(check (float 0.0)) "primary exact over the wire" (truth first) value
  | r -> Alcotest.failf "EST answered %s" (P.render_response r));
  (* the lease holds while the primary lives: still a standby after several
     poll intervals, and it refuses writes *)
  Thread.delay 0.4;
  Alcotest.(check bool) "standby passive while the lease renews" false
    (Failover.is_active fo);
  (match Coordinator.add standby ~name:"fo" ~payload:"0 1 0 1" with
  | Error (P.Read_only _) -> ()
  | _ -> Alcotest.fail "standby must refuse writes while the primary lives");

  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  wait_for ~timeout:10.0 "standby never promoted after the kill" (fun () ->
      if Failover.is_active fo then Some () else None);
  (* the workers' fence moved past the dead primary's epoch *)
  List.iter
    (fun p ->
      match Rpc.connect ~host:"127.0.0.1" ~port:p ~timeout:2.0 () with
      | Ok c ->
        (match Rpc.call c P.Hello with
        | Ok (P.Hello_reply { epoch; _ }) ->
          Alcotest.(check bool)
            (Printf.sprintf "worker %d fenced past epoch 1 (%d)" p epoch)
            true (epoch >= 2)
        | _ -> Alcotest.failf "worker %d HELLO failed" p);
        Rpc.close c
      | Error err -> Alcotest.failf "dial worker %d: %s" p (Rpc.describe_connect_error err))
    wports;
  (* no state lived only in the corpse: the promoted standby answers the
     exact phase-1 union at once, then carries the stream forward *)
  let est1, d1, stale1 = ok (Coordinator.estimate standby ~name:"fo") in
  Alcotest.(check bool) "promoted gather clean" false d1;
  Alcotest.(check (list int)) "no stale ring position" [] stale1;
  Alcotest.(check (float 0.0)) "kill -9 of the coordinator lost nothing"
    (truth first) est1;
  List.iter (fun b -> add_retry standby ~name:"fo" (payload_of b)) rest;
  settle_exact ~ctx:"promoted standby" standby ~name:"fo"
    ~truth:(truth (first @ rest));
  Rpc.close conn;
  ignore (Coordinator.close standby ~name:"fo");
  Failover.stop fo;
  Coordinator.shutdown standby;
  List.iter stop_worker workers;
  List.iteri (fun i _ -> rm_rf (spool (950 + i))) workers;
  Sys.remove portfile

let repl_seeds = [ 11; 23; 37; 41; 53; 67; 79; 97 ]

let matrix =
  List.concat_map
    (fun seed ->
      [
        Alcotest.test_case
          (Printf.sprintf "seed %d: worker kill mid-ingest stays exact, never DEGRADED" seed)
          `Quick
          (fun () -> scenario_kill_worker seed);
        Alcotest.test_case
          (Printf.sprintf "seed %d: coordinator kill mid-gather fails over and fences" seed)
          `Quick
          (fun () -> scenario_kill_coordinator seed);
        Alcotest.test_case
          (Printf.sprintf "seed %d: partition covers, heal rejoins" seed)
          `Quick
          (fun () -> scenario_partition_heal seed);
      ])
    repl_seeds

let suite =
  [
    Alcotest.test_case "dial timeout is typed and bounded" `Quick test_dial_timeout;
    Alcotest.test_case "epoch announcements are monotonic and reach the fence" `Quick
      test_epoch_monotonic;
    Alcotest.test_case "kill -9 of the live primary promotes the standby exactly"
      `Quick test_kill9_coordinator_failover;
  ]
  @ matrix
