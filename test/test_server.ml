(* Loopback end-to-end test of the estimation service: a real socket, a real
   accept loop, and the full durability cycle — serve, stream, stop (spooling
   to disk), restart from the spool, resume the stream. *)

module Server = Delphic_server.Server
module Rng = Delphic_util.Rng
module Bigint = Delphic_util.Bigint
module Rectangle = Delphic_sets.Rectangle
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload

let spool_dir =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "delphic-test-spool-%d" (Unix.getpid ()))

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let rpc (_, ic, oc) line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let disconnect (fd, _, _) = try Unix.close fd with Unix.Unix_error _ -> ()

let est_of reply =
  match String.split_on_char ' ' reply with
  | [ "EST"; v ] -> float_of_string v
  | _ -> Alcotest.failf "expected EST reply, got %S" reply

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let add_line box =
  let lo = Rectangle.lo box and hi = Rectangle.hi box in
  let b = Buffer.create 32 in
  Buffer.add_string b "ADD e2e";
  Array.iteri
    (fun i l ->
      Buffer.add_string b (Printf.sprintf " %d %d" l hi.(i)))
    lo;
  Buffer.contents b

let check_close est truth =
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within tolerance of %.0f" est truth)
    true
    (Float.abs (est -. truth) <= 0.3 *. truth)

let test_serve_stop_restart () =
  rm_rf spool_dir;
  let gen = Rng.create ~seed:4242 in
  let first =
    Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count:120
      ~max_side:400
  in
  let rest =
    Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count:40
      ~max_side:400
  in
  let truth boxes = Bigint.to_float (Exact.rectangle_union boxes) in

  (* first server: open a session and stream the first batch *)
  let s1 = Server.create ~port:0 ~spool:spool_dir ~seed:42 () in
  Alcotest.(check (list (pair string (result unit string))))
    "nothing to restore" [] (Server.restored s1);
  let th1 = Server.start s1 in
  let c = connect (Server.port s1) in
  Alcotest.(check string) "ping" "PONG" (rpc c "PING");
  Alcotest.(check string) "open" "OK opened e2e" (rpc c "OPEN e2e rect 0.2 0.1 40");
  List.iter (fun b -> Alcotest.(check string) "add" "OK" (rpc c (add_line b))) first;
  let bad = rpc c "ADD e2e one two three four" in
  Alcotest.(check bool)
    (Printf.sprintf "bad line rejected (%s)" bad)
    true
    (starts_with "ERR PARSE" bad);
  check_close (est_of (rpc c "EST e2e")) (truth first);
  let stats = rpc c "STATS e2e" in
  Alcotest.(check bool)
    (Printf.sprintf "stats after rejects (%s)" stats)
    true
    (starts_with "STATS family=rect items=120 " stats);
  disconnect c;

  (* graceful stop spools the session *)
  Server.request_stop s1;
  Thread.join th1;
  Alcotest.(check bool) "spool file written" true
    (Sys.file_exists (Filename.concat spool_dir "e2e.snap"));

  (* second server restores from the spool and resumes the stream *)
  let s2 = Server.create ~port:0 ~spool:spool_dir ~seed:977 () in
  Alcotest.(check (list (pair string (result unit string))))
    "restored e2e" [ ("e2e", Ok ()) ] (Server.restored s2);
  Alcotest.(check bool) "spool file consumed" false
    (Sys.file_exists (Filename.concat spool_dir "e2e.snap"));
  let th2 = Server.start s2 in
  let c2 = connect (Server.port s2) in
  check_close (est_of (rpc c2 "EST e2e")) (truth first);
  let stats2 = rpc c2 "STATS e2e" in
  Alcotest.(check bool)
    (Printf.sprintf "items survive the restart (%s)" stats2)
    true
    (starts_with "STATS family=rect items=120 " stats2);
  (* the restored session still enforces the pinned dimension *)
  Alcotest.(check bool) "dim still pinned" true
    (starts_with "ERR PARSE" (rpc c2 "ADD e2e 0 1 0 1 0 1"));
  List.iter (fun b -> ignore (rpc c2 (add_line b))) rest;
  check_close (est_of (rpc c2 "EST e2e")) (truth (first @ rest));
  disconnect c2;
  Server.request_stop s2;
  Thread.join th2;
  Alcotest.(check bool) "spooled again" true
    (Sys.file_exists (Filename.concat spool_dir "e2e.snap"));
  rm_rf spool_dir

let test_concurrent_sessions () =
  rm_rf spool_dir;
  let s = Server.create ~port:0 ~spool:spool_dir ~seed:7 () in
  let th = Server.start s in
  let a = connect (Server.port s) and b = connect (Server.port s) in
  Alcotest.(check string) "open a" "OK opened a" (rpc a "OPEN a rect 0.3 0.2 20");
  Alcotest.(check string) "open b" "OK opened b" (rpc b "OPEN b dnf:10 0.3 0.2 10");
  (* interleave the two sessions over two connections *)
  Alcotest.(check string) "a add" "OK" (rpc a "ADD a 0 9 0 9");
  Alcotest.(check string) "b add" "OK" (rpc b "ADD b 1 -3");
  Alcotest.(check string) "a add 2" "OK" (rpc b "ADD a 5 14 0 9");
  Alcotest.(check string) "exact estimate a" "EST 150" (rpc a "EST a");
  Alcotest.(check string) "duplicate open refused"
    "ERR SESSION-EXISTS a" (rpc b "OPEN a rect 0.3 0.2 20");
  Alcotest.(check string) "unknown session"
    "ERR UNKNOWN-SESSION ghost" (rpc a "EST ghost");
  Alcotest.(check string) "close b" "OK closed b" (rpc b "CLOSE b");
  disconnect a;
  disconnect b;
  Server.request_stop s;
  Thread.join th;
  Alcotest.(check bool) "only a spooled" true
    (Sys.file_exists (Filename.concat spool_dir "a.snap")
    && not (Sys.file_exists (Filename.concat spool_dir "b.snap")));
  rm_rf spool_dir

(* --- wire protocol v2 interop: a hand-rolled binary client against the
   same server a v1 text client is using, auto-detected per connection --- *)

module P = Delphic_server.Protocol
module Frame = Delphic_server.Frame

type v2c = { v2fd : Unix.file_descr; mutable v2pend : string }

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let v2_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  write_all fd Frame.preamble;
  { v2fd = fd; v2pend = "" }

let rec v2_recv c =
  let n = String.length c.v2pend in
  if n >= 8 && n >= 8 + Frame.read_be32 c.v2pend 0 then begin
    let len = Frame.read_be32 c.v2pend 0 in
    let crc = Frame.read_be32 c.v2pend 4 in
    let body = String.sub c.v2pend 8 len in
    c.v2pend <- String.sub c.v2pend (8 + len) (n - 8 - len);
    Alcotest.(check int) "reply frame CRC" (Frame.crc32 body) crc;
    body
  end
  else begin
    let buf = Bytes.create 4096 in
    match Unix.read c.v2fd buf 0 4096 with
    | 0 -> Alcotest.fail "v2 peer closed mid-reply"
    | k ->
      c.v2pend <- c.v2pend ^ Bytes.sub_string buf 0 k;
      v2_recv c
  end

let v2_call c req =
  write_all c.v2fd (Frame.frame (P.encode_request_v2 req));
  v2_recv c

let v2_close c = try Unix.close c.v2fd with Unix.Unix_error _ -> ()

let test_v1_v2_interop () =
  rm_rf spool_dir;
  let s = Server.create ~port:0 ~spool:spool_dir ~seed:31 () in
  let th = Server.start s in
  let port = Server.port s in

  (* one connection per protocol, same session, interleaved *)
  let v1 = connect port and v2 = v2_connect port in
  Alcotest.(check string) "v2 open" "OK opened mix"
    (v2_call v2
       (P.Open { session = "mix"; family = P.Rect; epsilon = 0.3; delta = 0.2;
                 log2_universe = 20.0 }));
  Alcotest.(check string) "v2 binary ADDB" "OKB 2"
    (v2_call v2
       (P.Add_batch { session = "mix"; payloads = [ "0 9 0 9"; "5 14 0 9" ]; ts = None }));
  Alcotest.(check string) "v1 sees v2's inserts" "EST 150" (rpc v1 "EST mix");
  Alcotest.(check string) "v1 add" "OK" (rpc v1 "ADD mix 0 9 10 19");
  Alcotest.(check string) "v2 sees v1's insert" "EST 250"
    (v2_call v2 (P.Est { session = "mix" }));
  Alcotest.(check string) "v2 ping" "PONG" (v2_call v2 P.Ping);

  (* a frame split across many tiny writes reassembles (the event loop's
     partial-read state machine) *)
  let frame = Frame.frame (P.encode_request_v2 (P.Est { session = "mix" })) in
  String.iter
    (fun ch ->
      write_all v2.v2fd (String.make 1 ch);
      Thread.yield ())
    frame;
  Alcotest.(check string) "byte-by-byte frame reassembled" "EST 250" (v2_recv v2);

  (* pipelining: several frames in one write, replies in order *)
  let b = Buffer.create 128 in
  Frame.frame_into b (P.encode_request_v2 P.Ping);
  Frame.frame_into b (P.encode_request_v2 (P.Est { session = "mix" }));
  Frame.frame_into b (P.encode_request_v2 P.Ping);
  write_all v2.v2fd (Buffer.contents b);
  Alcotest.(check string) "pipelined 1" "PONG" (v2_recv v2);
  Alcotest.(check string) "pipelined 2" "EST 250" (v2_recv v2);
  Alcotest.(check string) "pipelined 3" "PONG" (v2_recv v2);

  (* a corrupted frame surfaces as a framed ERR IO farewell, then close —
     never a desynced stream *)
  let evil = v2_connect port in
  let f = Bytes.of_string (Frame.frame (P.encode_request_v2 P.Ping)) in
  Bytes.set f 9 (Char.chr (Char.code (Bytes.get f 9) lxor 0x20));
  write_all evil.v2fd (Bytes.to_string f);
  let farewell = v2_recv evil in
  Alcotest.(check bool)
    (Printf.sprintf "CRC reject is typed (%s)" farewell)
    true
    (starts_with "ERR IO" farewell);
  let buf = Bytes.create 16 in
  Alcotest.(check int) "connection closed after CRC reject" 0
    (try Unix.read evil.v2fd buf 0 16 with Unix.Unix_error _ -> 0);
  v2_close evil;

  disconnect v1;
  v2_close v2;
  Server.request_stop s;
  Thread.join th;
  rm_rf spool_dir

let test_stop_is_idempotent () =
  rm_rf spool_dir;
  let s = Server.create ~port:0 ~spool:spool_dir ~seed:1 () in
  let th = Server.start s in
  Server.request_stop s;
  Server.request_stop s;
  Thread.join th;
  Server.request_stop s;
  rm_rf spool_dir

let suite =
  [
    Alcotest.test_case "serve / stop / restart cycle" `Quick test_serve_stop_restart;
    Alcotest.test_case "concurrent sessions" `Quick test_concurrent_sessions;
    Alcotest.test_case "v1/v2 interop on one server" `Quick test_v1_v2_interop;
    Alcotest.test_case "stop is idempotent" `Quick test_stop_is_idempotent;
  ]
