(* Wire protocol v2 framing: qcheck round-trips of binary ADDB records
   (payloads with newlines, percent signs, and high bytes — exactly what
   the v1 text protocol cannot carry raw), incremental [Frame.scan]
   reassembly across every split point, torn/CRC-flipped frame rejection
   mirroring test_wal.ml's byte surgery, and the zero-copy WAL splice
   ([Wal.append_framed]) replaying byte-identically. *)

module P = Delphic_server.Protocol
module Frame = Delphic_server.Frame
module Wal = Delphic_server.Wal

(* --- generators ------------------------------------------------------- *)

let session_gen =
  QCheck.Gen.(
    let ch =
      oneof
        [
          char_range 'a' 'z';
          char_range 'A' 'Z';
          char_range '0' '9';
          oneofl [ '_'; '.'; '-' ];
        ]
    in
    map (fun l -> String.init (List.length l) (List.nth l)) (list_size (1 -- 12) ch))

(* Payload bytes the text protocol must armor or cannot carry at all:
   newlines, '%', NUL, 0xFF, plus ordinary printables. *)
let payload_gen =
  QCheck.Gen.(
    let ch =
      frequency
        [
          (6, char_range ' ' '~');
          (1, return '\n');
          (1, return '%');
          (1, return '\x00');
          (1, return '\xff');
        ]
    in
    map (fun l -> String.init (List.length l) (List.nth l)) (list_size (0 -- 40) ch))

let batch_gen =
  QCheck.Gen.(
    triple session_gen
      (list_size (0 -- 8) payload_gen)
      (opt (map Float.abs (float_bound_exclusive 1e9))))

let batch_arb =
  QCheck.make
    ~print:(fun (s, ps, ts) ->
      Printf.sprintf "session=%S payloads=[%s] ts=%s" s
        (String.concat "; " (List.map (Printf.sprintf "%S") ps))
        (match ts with None -> "None" | Some t -> string_of_float t))
    batch_gen

let qcheck_case ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- CRC and round-trip ----------------------------------------------- *)

let test_crc_vector () =
  (* the standard CRC-32 check value *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926 (Frame.crc32 "123456789")

let roundtrip (session, payloads, ts) =
  let req = P.Add_batch { session; payloads; ts } in
  let body = P.encode_request_v2 req in
  (* binary bodies are tagged, carry raw payload bytes, and never need a
     trailing newline *)
  if body.[0] <> '\x01' then QCheck.Test.fail_report "missing binary tag";
  match P.parse_frame_body body with
  | Ok (P.Add_batch b) ->
    b.session = session && b.payloads = payloads && b.ts = ts
  | Ok _ -> QCheck.Test.fail_report "decoded to a different request"
  | Error e -> QCheck.Test.fail_report (P.render_response (P.Error_reply e))

let roundtrip_log (session, payloads, ts) =
  (* the replica-log twin rides the same binary record under its own tag *)
  let req = P.Add_log { session; payloads; ts } in
  let body = P.encode_request_v2 req in
  if body.[0] <> '\x01' then QCheck.Test.fail_report "missing binary tag";
  if body.[1] <> 'L' then QCheck.Test.fail_report "ADDL must carry the L tag";
  match P.parse_frame_body body with
  | Ok (P.Add_log b) ->
    b.session = session && b.payloads = payloads && b.ts = ts
  | Ok _ -> QCheck.Test.fail_report "decoded to a different request"
  | Error e -> QCheck.Test.fail_report (P.render_response (P.Error_reply e))

let non_batch_falls_back () =
  (* every non-ADDB request encodes as its v1 text line, so a v2 stream is
     mixed text/binary framed bodies *)
  List.iter
    (fun req ->
      let body = P.encode_request_v2 req in
      Alcotest.(check string) "text body" (P.render_request req) body;
      match P.parse_frame_body body with
      | Ok req' -> Alcotest.(check bool) "reparses" true (req = req')
      | Error e -> Alcotest.fail (P.render_response (P.Error_reply e)))
    [
      P.Est { session = "s" };
      P.Ping;
      P.Add { session = "s"; payload = "0 9 0 9"; ts = Some 4.5 };
    ]

let test_truncated_binary_rejected () =
  let body =
    P.encode_request_v2
      (P.Add_batch { session = "sess"; payloads = [ "a\nb"; "c%d" ]; ts = Some 7.0 })
  in
  for cut = 2 to String.length body - 1 do
    match P.parse_frame_body (String.sub body 0 cut) with
    | Ok _ -> Alcotest.failf "truncation at %d parsed" cut
    | Error _ -> ()
  done

(* --- Frame.scan: reassembly and rejection ----------------------------- *)

let scan_all s =
  (* feed the whole buffer and collect every complete frame *)
  let buf = Bytes.of_string s in
  let rec go pos acc =
    match Frame.scan buf ~pos ~len:(Bytes.length buf) with
    | Frame.Got { body; next } -> go next (body :: acc)
    | Frame.Need _ -> (List.rev acc, `Need)
    | Frame.Bad msg -> (List.rev acc, `Bad msg)
  in
  go 0 []

let test_scan_split_points () =
  let bodies = [ "EST mix"; "\x01Braw\nbytes%\xff"; "" ] in
  let wire = String.concat "" (List.map Frame.frame bodies) in
  let n = String.length wire in
  (* every prefix either yields a clean prefix of the bodies or asks for
     more — never Bad, never a wrong body *)
  for cut = 0 to n do
    let got, tail = scan_all (String.sub wire 0 cut) in
    (match tail with
    | `Bad msg -> Alcotest.failf "prefix %d/%d: Bad %s" cut n msg
    | `Need -> ());
    List.iteri
      (fun i body ->
        Alcotest.(check string)
          (Printf.sprintf "prefix %d frame %d" cut i)
          (List.nth bodies i) body)
      got;
    if cut = n then
      Alcotest.(check int) "all frames at full length" (List.length bodies)
        (List.length got)
  done

let flip_arb =
  QCheck.make
    ~print:(fun (body, off) -> Printf.sprintf "body=%S flip@%d" body off)
    QCheck.Gen.(
      let* body = payload_gen in
      let framed_len = 8 + String.length body in
      let* off = 0 -- (framed_len - 1) in
      return (body, off))

let flipped_never_yields_original (body, off) =
  let f = Bytes.of_string (Frame.frame body) in
  Bytes.set f off (Char.chr (Char.code (Bytes.get f off) lxor 0x5A));
  match Frame.scan f ~pos:0 ~len:(Bytes.length f) with
  | Frame.Got { body = b; _ } ->
    (* a flip inside the length header can only shorten the frame (a longer
       claim reads as Need); the CRC then rejects the mis-sliced body *)
    QCheck.Test.fail_reportf "corrupt frame decoded to %S" b
  | Frame.Need _ | Frame.Bad _ -> true

let test_oversized_length_is_bad () =
  let f = Bytes.of_string (Frame.frame "x") in
  (* claim a body far beyond max_body: must be Bad (protocol violation),
     not Need (which would make the peer wait forever) *)
  Bytes.set f 0 '\xff';
  match Frame.scan f ~pos:0 ~len:(Bytes.length f) with
  | Frame.Bad _ -> ()
  | Frame.Got _ -> Alcotest.fail "oversized frame decoded"
  | Frame.Need _ -> Alcotest.fail "oversized frame waits instead of failing"

(* --- WAL splice -------------------------------------------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "delphic-frame-%d-%d"
         (Unix.getpid ())
         (incr n;
          !n))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let test_wal_splice_roundtrip () =
  let dir = fresh_dir () in
  rm_rf dir;
  let req =
    P.Add_batch
      { session = "sp"; payloads = [ "0 9 0 9"; "raw\n%bytes\xff" ]; ts = Some 12.5 }
  in
  let framed = Frame.frame (P.encode_request_v2 req) in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  Wal.append_framed w framed;
  Wal.append w "EST sp" (* text records interleave freely *);
  Wal.close w;
  let w2 = Wal.open_ ~dir ~fsync:Wal.Never in
  let seen = ref [] in
  let n, cut = Wal.replay w2 ~f:(fun b -> seen := b :: !seen) in
  Wal.close w2;
  Alcotest.(check int) "two records" 2 n;
  Alcotest.(check bool) "no torn tail" true (cut = None);
  (match List.rev !seen with
  | [ bin; text ] ->
    Alcotest.(check string) "binary body spliced verbatim"
      (P.encode_request_v2 req) bin;
    (match P.parse_frame_body bin with
    | Ok r -> Alcotest.(check bool) "replayed request intact" true (r = req)
    | Error e -> Alcotest.fail (P.render_response (P.Error_reply e)));
    Alcotest.(check string) "text record" "EST sp" text
  | l -> Alcotest.failf "expected 2 bodies, got %d" (List.length l));
  rm_rf dir

let test_append_framed_validates () =
  let dir = fresh_dir () in
  rm_rf dir;
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  Alcotest.check_raises "length/frame mismatch rejected"
    (Invalid_argument "Wal.append_framed: not a whole frame") (fun () ->
      Wal.append_framed w ((Frame.frame "body") ^ "trailing"));
  Wal.close w;
  rm_rf dir

let suite =
  [
    Alcotest.test_case "crc32 check vector" `Quick test_crc_vector;
    qcheck_case "binary ADDB round-trips (\\n, %, 0xFF payloads)" batch_arb roundtrip;
    qcheck_case "binary ADDL round-trips under the L tag" batch_arb roundtrip_log;
    Alcotest.test_case "non-batch requests encode as text" `Quick non_batch_falls_back;
    Alcotest.test_case "truncated binary body rejected at every cut" `Quick
      test_truncated_binary_rejected;
    Alcotest.test_case "scan reassembles across every split point" `Quick
      test_scan_split_points;
    qcheck_case "flipped byte never yields the original body" flip_arb
      flipped_never_yields_original;
    Alcotest.test_case "oversized length claim is Bad, not Need" `Quick
      test_oversized_length_is_bad;
    Alcotest.test_case "WAL splice round-trips through replay" `Quick
      test_wal_splice_roundtrip;
    Alcotest.test_case "append_framed validates its frame" `Quick
      test_append_framed_validates;
  ]
