let () =
  (* a re-exec'd kill -9 victim never reaches Alcotest: it serves until
     SIGKILLed (see Test_cluster.fork_wal_worker) *)
  Test_cluster.maybe_forked_wal_worker ();
  (* same re-exec diversion for the coordinator kill -9 victim *)
  Test_failover.maybe_forked_coordinator ();
  Alcotest.run "delphic"
    [
      ("rng", Test_rng.suite);
      ("bigint", Test_bigint.suite);
      ("comb", Test_comb.suite);
      ("binomial", Test_binomial.suite);
      ("dist", Test_dist.suite);
      ("bitvec", Test_bitvec.suite);
      ("summary", Test_summary.suite);
      ("special", Test_special.suite);
      ("families", Test_families.suite);
      ("knapsack", Test_knapsack.suite);
      ("bdd", Test_bdd.suite);
      ("exact", Test_exact.suite);
      ("interval-cover", Test_interval_cover.suite);
      ("gf2-families", Test_gf2_families.suite);
      ("mixed-coverage", Test_mixed_coverage.suite);
      ("multi-interval", Test_multi_interval.suite);
      ("claim-2.5", Test_claim_2_5.suite);
      ("vatic", Test_vatic.suite);
      ("vatic-families", Test_vatic_families.suite);
      ("ext-vatic", Test_ext_vatic.suite);
      ("aps", Test_aps.suite);
      ("adaptive", Test_adaptive.suite);
      ("extensions", Test_extensions.suite);
      ("xor-sketch", Test_xor_sketch.suite);
      ("parsers", Test_parsers.suite);
      ("snapshot-io", Test_snapshot_io.suite);
      ("window", Test_window.suite);
      ("merge", Test_merge.suite);
      ("expr", Test_expr.suite);
      ("protocol", Test_protocol.suite);
      ("frame", Test_frame.suite);
      ("wal", Test_wal.suite);
      ("server", Test_server.suite);
      ("cluster", Test_cluster.suite);
      ("failover", Test_failover.suite);
      ("chaos", Test_chaos.suite);
      ("mt", Test_mt.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("baselines", Test_baselines.suite);
      ("workload", Test_workload.suite);
      ("harness", Test_harness.suite);
    ]
