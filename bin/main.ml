(* delphic — command-line front end.

   Subcommands estimate union sizes for each supported Delphic family on
   synthetic workloads (or stdin for KMP), and run the experiment suite. *)

module Rng = Delphic_util.Rng
module Bigint = Delphic_util.Bigint
module Rectangle = Delphic_sets.Rectangle
module Range1d = Delphic_sets.Range1d
module Dnf = Delphic_sets.Dnf
module Coverage = Delphic_sets.Coverage
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload

(* The CLI estimates through the Adaptive wrapper: exact answers whenever
   the union is small (including universes below the Theorem 1.2 sampling
   floor), VATIC sketching at scale. *)
module Vatic_rect = Delphic_core.Adaptive.Make (Rectangle)
module Vatic_dnf = Delphic_core.Adaptive.Make (Dnf)
module Vatic_cov = Delphic_core.Adaptive.Make (Coverage)
module Vatic_single = Delphic_core.Adaptive.Make (Delphic_sets.Singleton)
module Vatic_hyper = Delphic_core.Adaptive.Make (Delphic_sets.Hypervolume)
module Vatic_affine = Delphic_core.Adaptive.Make (Delphic_sets.Affine_subspace)

open Cmdliner

let log2f x = log x /. log 2.0

(* Shared options. *)

let epsilon =
  let doc = "Target relative accuracy (0 < eps < 1)." in
  Arg.(value & opt float 0.2 & info [ "e"; "epsilon" ] ~docv:"EPS" ~doc)

let delta =
  let doc = "Failure probability (0 < delta < 1)." in
  Arg.(value & opt float 0.2 & info [ "d"; "delta" ] ~docv:"DELTA" ~doc)

let seed =
  let doc = "PRNG seed (experiments are reproducible)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let count =
  let doc = "Number of stream items M." in
  Arg.(value & opt int 1000 & info [ "m"; "count" ] ~docv:"M" ~doc)


(* kmp: read rectangles from a file ("lo1 hi1 lo2 hi2 ..." per line) or
   generate a synthetic cloud. *)

let kmp_cmd =
  let file =
    let doc = "Read rectangles (one per line: lo1 hi1 lo2 hi2 ...) from $(docv)." in
    Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)
  in
  let dim =
    let doc = "Dimension of synthetic boxes." in
    Arg.(value & opt int 2 & info [ "dim" ] ~docv:"D" ~doc)
  in
  let universe =
    let doc = "Side of the universe (each coordinate in [0, $(docv)))." in
    Arg.(value & opt int 1_000_000 & info [ "u"; "universe" ] ~docv:"N" ~doc)
  in
  let exact =
    let doc = "Also compute the exact union volume (slow; small inputs only)." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run epsilon delta seed count file dim universe exact =
    let boxes =
      match file with
      | Some path -> Delphic_stream.Parsers.rectangles_of_file path
      | None ->
        let rng = Rng.create ~seed in
        Workload.Rectangles.uniform rng ~universe ~dim ~count ~max_side:(universe / 20)
    in
    match boxes with
    | [] -> prerr_endline "no rectangles"; exit 1
    | first :: _ ->
      let d = Rectangle.dim first in
      let side =
        match file with
        | None -> universe
        | Some _ ->
          1 + List.fold_left (fun acc b -> Array.fold_left Stdlib.max acc (Rectangle.hi b)) 0 boxes
      in
      let log2_universe = float_of_int d *. log2f (float_of_int side) in
      let t = Vatic_rect.create ~epsilon ~delta ~log2_universe ~seed () in
      List.iter (Vatic_rect.process t) boxes;
      Printf.printf "estimated union volume: %.6g  (M = %d boxes, d = %d)\n"
        (Vatic_rect.estimate t) (List.length boxes) d;
      Printf.printf "estimator state: %s\n" (Vatic_rect.describe t);
      if exact then
        Printf.printf "exact union volume:     %s\n"
          (Bigint.to_string (Exact.rectangle_union boxes))
  in
  let doc = "Estimate the union volume of a stream of axis-parallel boxes (Klee's Measure Problem)." in
  Cmd.v (Cmd.info "kmp" ~doc)
    Term.(const run $ epsilon $ delta $ seed $ count $ file $ dim $ universe $ exact)

(* dnf: synthetic random k-DNF model counting. *)

let dnf_cmd =
  let nvars =
    let doc = "Number of Boolean variables." in
    Arg.(value & opt int 40 & info [ "n"; "nvars" ] ~docv:"N" ~doc)
  in
  let width =
    let doc = "Literals per term." in
    Arg.(value & opt int 10 & info [ "w"; "width" ] ~docv:"W" ~doc)
  in
  let exact =
    let doc = "Also compute the exact model count with a BDD." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let file =
    let doc = "Read terms (DIMACS-style signed literals per line) from $(docv)." in
    Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)
  in
  let run epsilon delta seed count nvars width exact file =
    let rng = Rng.create ~seed in
    let terms =
      match file with
      | Some path -> Delphic_stream.Parsers.dnf_of_file ~nvars path
      | None -> Workload.Dnf_terms.random rng ~nvars ~count ~width
    in
    let t =
      Vatic_dnf.create ~epsilon ~delta ~log2_universe:(float_of_int nvars) ~seed ()
    in
    List.iter (Vatic_dnf.process t) terms;
    Printf.printf "estimated model count: %.6g  (n = %d, %d terms)\n"
      (Vatic_dnf.estimate t) nvars (List.length terms);
    Printf.printf "estimator state: %s\n" (Vatic_dnf.describe t);
    if exact then
      Printf.printf "exact model count:     %s\n"
        (Bigint.to_string (Exact.dnf_count ~nvars terms))
  in
  let doc = "Estimate the model count of a streamed DNF formula." in
  Cmd.v (Cmd.info "dnf" ~doc)
    Term.(const run $ epsilon $ delta $ seed $ count $ nvars $ width $ exact $ file)

(* coverage: t-wise coverage of a random test suite. *)

let coverage_cmd =
  let nbits =
    let doc = "Width of each test vector." in
    Arg.(value & opt int 14 & info [ "n"; "nbits" ] ~docv:"N" ~doc)
  in
  let strength =
    let doc = "Interaction strength t." in
    Arg.(value & opt int 2 & info [ "t"; "strength" ] ~docv:"T" ~doc)
  in
  let exact =
    let doc = "Also compute the exact coverage by enumeration." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let file =
    let doc = "Read test vectors (one 0/1 string per line) from $(docv)." in
    Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)
  in
  let run epsilon delta seed count nbits strength exact file =
    let rng = Rng.create ~seed in
    let vectors =
      match file with
      | Some path -> Delphic_stream.Parsers.vectors_of_file path
      | None -> Workload.Coverage_suites.random rng ~nbits ~count ~bias:0.5
    in
    let nbits =
      match vectors with [] -> nbits | v :: _ -> Delphic_util.Bitvec.width v
    in
    let stream = Workload.Coverage_suites.coverage_sets ~strength vectors in
    let log2_universe = Bigint.log2 (Coverage.universe_size ~n:nbits ~strength) in
    let t = Vatic_cov.create ~epsilon ~delta ~log2_universe ~seed () in
    List.iter (Vatic_cov.process t) stream;
    Printf.printf "estimated %d-wise coverage: %.6g  (%d vectors of %d bits)\n" strength
      (Vatic_cov.estimate t) (List.length vectors) nbits;
    Printf.printf "estimator state: %s\n" (Vatic_cov.describe t);
    if exact then
      Printf.printf "exact coverage:            %s\n"
        (Bigint.to_string (Exact.coverage_union ~strength vectors))
  in
  let doc = "Estimate the t-wise coverage of a streamed test suite." in
  Cmd.v (Cmd.info "coverage" ~doc)
    Term.(const run $ epsilon $ delta $ seed $ count $ nbits $ strength $ exact $ file)

(* distinct: classic distinct elements on a Zipf stream. *)

let distinct_cmd =
  let universe =
    let doc = "Universe size." in
    Arg.(value & opt int 1_000_000 & info [ "u"; "universe" ] ~docv:"N" ~doc)
  in
  let zipf =
    let doc = "Zipf exponent for the value distribution (0 = uniform)." in
    Arg.(value & opt float 0.0 & info [ "zipf" ] ~docv:"S" ~doc)
  in
  let run epsilon delta seed count universe zipf =
    let rng = Rng.create ~seed in
    let stream =
      if zipf > 0.0 then Workload.Singletons.zipf rng ~universe ~count ~exponent:zipf
      else Workload.Singletons.uniform rng ~universe ~count
    in
    let t =
      Vatic_single.create ~epsilon ~delta
        ~log2_universe:(log2f (float_of_int universe))
        ~seed ()
    in
    List.iter (Vatic_single.process t) stream;
    let truth = Exact.distinct (List.map Delphic_sets.Singleton.value stream) in
    Printf.printf "estimated distinct: %.6g   exact: %d\n" (Vatic_single.estimate t) truth;
    Printf.printf "estimator state: %s\n" (Vatic_single.describe t)
  in
  let doc = "Estimate the number of distinct elements in a synthetic stream." in
  Cmd.v (Cmd.info "distinct" ~doc)
    Term.(const run $ epsilon $ delta $ seed $ count $ universe $ zipf)

(* hypervolume: dominated volume of a streamed Pareto front. *)

let hypervolume_cmd =
  let dim =
    let doc = "Number of objectives." in
    Arg.(value & opt int 3 & info [ "dim" ] ~docv:"D" ~doc)
  in
  let universe =
    let doc = "Objective scale (coordinates in [0, $(docv)))." in
    Arg.(value & opt int 4096 & info [ "u"; "universe" ] ~docv:"N" ~doc)
  in
  let exact =
    let doc = "Also compute the exact hypervolume (small inputs only)." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run epsilon delta seed count dim universe exact =
    let rng = Rng.create ~seed in
    let front =
      Workload.Hypervolumes.pareto_front rng ~universe ~dim ~count
    in
    let log2_universe = float_of_int dim *. log2f (float_of_int universe) in
    let t = Vatic_hyper.create ~epsilon ~delta ~log2_universe ~seed () in
    List.iter (Vatic_hyper.process t) front;
    Printf.printf "estimated hypervolume: %.6g  (%d points, %d objectives)\n"
      (Vatic_hyper.estimate t) count dim;
    Printf.printf "estimator state: %s\n" (Vatic_hyper.describe t);
    if exact then
      Printf.printf "exact hypervolume:     %s\n"
        (Bigint.to_string
           (Exact.rectangle_union
              (List.map Delphic_sets.Hypervolume.to_rectangle front)))
  in
  let doc = "Estimate the hypervolume indicator of a streamed Pareto front." in
  Cmd.v (Cmd.info "hypervolume" ~doc)
    Term.(const run $ epsilon $ delta $ seed $ count $ dim $ universe $ exact)

(* xor: union of random XOR-constraint solution spaces. *)

let xor_cmd =
  let nvars =
    let doc = "Number of GF(2) variables." in
    Arg.(value & opt int 48 & info [ "n"; "nvars" ] ~docv:"N" ~doc)
  in
  let rows =
    let doc = "Constraints per system." in
    Arg.(value & opt int 38 & info [ "r"; "rows" ] ~docv:"R" ~doc)
  in
  let run epsilon delta seed count nvars rows =
    let rng = Rng.create ~seed in
    let stream = ref [] in
    while List.length !stream < count do
      let row () =
        { Delphic_util.Gf2.coeffs = Delphic_util.Bitvec.random rng ~width:nvars;
          rhs = Rng.bool rng }
      in
      match
        Delphic_sets.Affine_subspace.create_opt ~nvars
          (List.init rows (fun _ -> row ()))
      with
      | Some s -> stream := s :: !stream
      | None -> ()
    done;
    let t =
      Vatic_affine.create ~epsilon ~delta ~log2_universe:(float_of_int nvars) ~seed ()
    in
    List.iter (Vatic_affine.process t) !stream;
    Printf.printf
      "estimated union of %d affine subspaces of GF(2)^%d: %.6g\n" count nvars
      (Vatic_affine.estimate t);
    Printf.printf "estimator state: %s\n" (Vatic_affine.describe t)
  in
  let doc = "Estimate the union size of random XOR-constraint solution spaces." in
  Cmd.v (Cmd.info "xor" ~doc)
    Term.(const run $ epsilon $ delta $ seed $ count $ nvars $ rows)

(* watch: incremental estimates over boxes streaming on stdin. *)

module Watch_vatic = Delphic_core.Vatic.Make (Rectangle)

let watch_cmd =
  let every =
    let doc = "Print a running estimate every $(docv) items." in
    Arg.(value & opt int 100 & info [ "every" ] ~docv:"N" ~doc)
  in
  let log2u =
    let doc = "log2 of the universe size (boxes: d * log2 |Delta|)." in
    Arg.(value & opt float 40.0 & info [ "log2-universe" ] ~docv:"B" ~doc)
  in
  let run epsilon delta seed every log2u =
    let t = Watch_vatic.create ~epsilon ~delta ~log2_universe:log2u ~seed () in
    let items = ref 0 in
    let lineno = ref 0 in
    (try
       while true do
         let line = String.trim (input_line stdin) in
         incr lineno;
         if line <> "" && line.[0] <> '#' then begin
           let box = Delphic_stream.Parsers.rectangle_of_line ~lineno:!lineno line in
           Watch_vatic.process t box;
           incr items;
           if !items mod every = 0 then
             Printf.printf "%d items: estimate %.6g (bucket %d)\n%!" !items
               (Watch_vatic.estimate t) (Watch_vatic.bucket_size t)
         end
       done
     with End_of_file -> ());
    Printf.printf "final after %d items: %.6g\n" !items (Watch_vatic.estimate t)
  in
  let doc =
    "Stream boxes on stdin (one per line: lo1 hi1 lo2 hi2 ...) and print running union-volume estimates."
  in
  Cmd.v (Cmd.info "watch" ~doc)
    Term.(const run $ epsilon $ delta $ seed $ every $ log2u)

(* compare: all applicable estimators on one synthetic range stream. *)

module Cmp_vatic = Delphic_core.Vatic.Make (Range1d)
module Cmp_aps = Delphic_core.Aps_estimator.Make (Range1d)
module Cmp_kl = Delphic_core.Karp_luby.Make (Range1d)

let compare_cmd =
  let universe =
    let doc = "Universe size." in
    Arg.(value & opt int 1_000_000 & info [ "u"; "universe" ] ~docv:"N" ~doc)
  in
  let heavy =
    let doc = "Use a heavy-tailed (Pareto) length distribution instead of uniform." in
    Arg.(value & flag & info [ "heavy-tailed" ] ~doc)
  in
  let run epsilon delta seed count universe heavy =
    let rng = Rng.create ~seed in
    let pool =
      if heavy then
        Workload.Ranges.heavy_tailed rng ~universe ~count:(max 1 (count / 5)) ~shape:0.8
      else Workload.Ranges.uniform rng ~universe ~count:(max 1 (count / 5))
             ~max_len:(max 1 (universe / 200))
    in
    let pool_arr = Array.of_list pool in
    let stream =
      List.init count (fun _ -> pool_arr.(Rng.int rng (Array.length pool_arr)))
    in
    let truth = float_of_int (Exact.range_union pool) in
    let log2u = log2f (float_of_int universe) in
    let time f =
      let t0 = Unix.gettimeofday () in
      let v = f () in
      (v, Unix.gettimeofday () -. t0)
    in
    let vatic, vt =
      time (fun () ->
          let t = Cmp_vatic.create ~epsilon ~delta ~log2_universe:log2u ~seed () in
          List.iter (Cmp_vatic.process t) stream;
          (Cmp_vatic.estimate t, Cmp_vatic.max_bucket_size t))
    in
    let aps, at =
      time (fun () ->
          let t =
            Cmp_aps.create ~epsilon ~delta ~log2_universe:log2u
              ~stream_length:(List.length stream) ~seed ()
          in
          List.iter (Cmp_aps.process t) stream;
          (Cmp_aps.estimate t, Cmp_aps.max_bucket_size t))
    in
    let kl, kt =
      time (fun () ->
          let t = Cmp_kl.create ~epsilon ~delta ~seed () in
          List.iter (Cmp_kl.add t) stream;
          (Cmp_kl.estimate t, Cmp_kl.stored_sets t))
    in
    let err est = Float.abs (est -. truth) /. truth in
    Printf.printf "exact union size: %.0f (M = %d, %s lengths)\n" truth count
      (if heavy then "heavy-tailed" else "uniform");
    Delphic_harness.Table.print
      ~header:[ "method"; "estimate"; "rel err"; "space"; "seconds" ]
      [
        [ "VATIC (unknown M)"; Printf.sprintf "%.0f" (fst vatic);
          Printf.sprintf "%.4f" (err (fst vatic));
          Printf.sprintf "%d entries" (snd vatic); Printf.sprintf "%.3f" vt ];
        [ "APS (needs M)"; Printf.sprintf "%.0f" (fst aps);
          Printf.sprintf "%.4f" (err (fst aps));
          Printf.sprintf "%d entries" (snd aps); Printf.sprintf "%.3f" at ];
        [ "Karp-Luby (offline)"; Printf.sprintf "%.0f" (fst kl);
          Printf.sprintf "%.4f" (err (fst kl));
          Printf.sprintf "%d sets stored" (snd kl); Printf.sprintf "%.3f" kt ];
      ]
  in
  let doc = "Run VATIC, APS-Estimator and Karp-Luby side by side on one range stream." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ epsilon $ delta $ seed $ count $ universe $ heavy)

(* serve: the TCP estimation service (lib/server). *)

let port_arg =
  let doc = "TCP port (0 picks an ephemeral port and prints it)." in
  Arg.(value & opt int 7764 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Address to bind/connect to." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let max_conns_arg =
  let doc =
    "Accept at most $(docv) concurrent connections; the event loop closes \
     excess accepts immediately instead of queueing them.  The process \
     descriptor limit is raised toward $(docv) at startup when possible."
  in
  Arg.(value & opt int 16384 & info [ "max-conns" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Shard the front end across $(docv) event-loop domains: one acceptor \
     deals accepted connections round-robin to per-domain loops.  $(b,1) \
     keeps the single-loop layout.  Defaults to the machine's recommended \
     domain count, capped at 8."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let resolve_domains = function
  | Some d -> max 1 d
  | None -> Delphic_server.Evgroup.default_domains ()

(* WAL options, shared by serve and worker: --wal DIR upgrades the
   durability contract from "graceful stop" to "kill -9". *)

let wal_term =
  let wal_dir =
    let doc =
      "Write-ahead journal directory.  Every accepted mutation is journalled \
       (length-prefixed, CRC-framed) before its OK leaves the socket, and \
       startup recovers from the last checkpoint plus the journal tail — the \
       process survives $(b,kill -9) without losing an acknowledged set.  \
       The spool directory is then unused."
    in
    Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"DIR" ~doc)
  in
  let fsync =
    let fsync_conv =
      Arg.conv
        ( (fun s ->
            match Delphic_server.Wal.fsync_policy_of_string s with
            | Ok p -> Ok p
            | Error msg -> Error (`Msg msg)),
          fun ppf p ->
            Format.pp_print_string ppf
              (Delphic_server.Wal.fsync_policy_to_string p) )
    in
    let doc =
      "Journal fsync policy: $(b,always) (survives power cuts), $(b,never) \
       (survives process death only), or $(b,interval)[:SECONDS] (fsync at \
       most once per interval; default 0.2s).  Only meaningful with \
       $(b,--wal)."
    in
    Arg.(
      value
      & opt fsync_conv (Delphic_server.Wal.Interval 0.2)
      & info [ "fsync" ] ~docv:"POLICY" ~doc)
  in
  let checkpoint_every =
    let doc =
      "Snapshot the sessions and truncate the journal every $(docv) journal \
       records ($(b,0) disables periodic checkpoints; the graceful-stop one \
       remains).  Only meaningful with $(b,--wal)."
    in
    Arg.(value & opt int 512 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let group =
    let doc =
      "Group-commit batch cap: journal appends go through a dedicated \
       writer domain that coalesces up to $(docv) records into one write \
       and at most one fsync, and OK/OKB replies wait for their record's \
       durability.  $(b,1) restores the synchronous one-write-per-record \
       path.  Only meaningful with $(b,--wal)."
    in
    Arg.(value & opt int 64 & info [ "wal-group" ] ~docv:"N" ~doc)
  in
  let combine dir fsync checkpoint_every group =
    Option.map
      (fun dir -> { Delphic_server.Server.dir; fsync; checkpoint_every; group })
      dir
  in
  Term.(const combine $ wal_dir $ fsync $ checkpoint_every $ group)

let durability_banner = function
  | None -> ""
  | Some { Delphic_server.Server.dir; fsync; _ } ->
    Printf.sprintf ", wal: %s (fsync %s)" dir
      (Delphic_server.Wal.fsync_policy_to_string fsync)

let serve_cmd =
  let spool =
    let doc =
      "Spool directory for durable session snapshots: restored on start, \
       written on SIGINT/SIGTERM.  Superseded by $(b,--wal) when given."
    in
    Arg.(value & opt string "delphic-spool" & info [ "spool" ] ~docv:"DIR" ~doc)
  in
  let run seed port host spool wal max_conns domains =
    ignore (Delphic_server.Evloop.raise_nofile (max_conns + 64));
    let domains = resolve_domains domains in
    let server =
      Delphic_server.Server.create ~host ?wal ~port ~spool ~seed ~max_conns ~domains ()
    in
    Delphic_server.Server.install_signals server;
    List.iter
      (function
        | name, Ok () -> Printf.printf "restored session %s\n%!" name
        | name, Error msg ->
          Printf.printf "warning: session %s not restored: %s\n%!" name msg)
      (Delphic_server.Server.restored server);
    Printf.printf "delphic serve: listening on %s:%d (spool: %s, domains: %d%s)\n%!" host
      (Delphic_server.Server.port server)
      spool domains (durability_banner wal);
    Delphic_server.Server.serve server;
    print_endline "delphic serve: stopped; sessions spooled"
  in
  let doc =
    "Run the estimation service: a newline-delimited TCP protocol \
     (OPEN/ADD/EST/EXPR/STATS/SNAPSHOT/RESTORE/CLOSE/PING) over long-lived \
     estimator sessions, with durable snapshots on shutdown (or a \
     write-ahead journal with $(b,--wal)).  EXPR estimates the cardinality \
     of a set expression over open sessions, e.g. \
     $(b,EXPR (A & B) \\\\ C)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ seed $ port_arg $ host_arg $ spool $ wal_term $ max_conns_arg
      $ domains_arg)

(* worker / coord: the sharded cluster (lib/cluster).  A worker is just a
   server under a name that reads well in cluster commands. *)

let worker_cmd =
  let spool =
    let doc = "Spool directory for durable session snapshots." in
    Arg.(value & opt string "delphic-worker-spool" & info [ "spool" ] ~docv:"DIR" ~doc)
  in
  let run seed port host spool wal max_conns domains =
    ignore (Delphic_server.Evloop.raise_nofile (max_conns + 64));
    let domains = resolve_domains domains in
    let server =
      Delphic_server.Server.create ~host ?wal ~port ~spool ~seed ~max_conns ~domains ()
    in
    Delphic_server.Server.install_signals server;
    Printf.printf "delphic worker: listening on %s:%d (spool: %s, domains: %d%s)\n%!" host
      (Delphic_server.Server.port server)
      spool domains (durability_banner wal);
    Delphic_server.Server.serve server;
    print_endline "delphic worker: stopped; sessions spooled"
  in
  let doc =
    "Run one cluster worker: a full estimation server (every verb including \
     SNAPSHOT/MERGE/HELLO), ready to be driven by $(b,delphic coord); with \
     $(b,--wal) an acknowledged set survives $(b,kill -9)."
  in
  Cmd.v (Cmd.info "worker" ~doc)
    Term.(
      const run $ seed $ port_arg $ host_arg $ spool $ wal_term $ max_conns_arg
      $ domains_arg)

let workers_arg =
  let parse s =
    let worker tok =
      match String.rindex_opt tok ':' with
      | None -> Error (Printf.sprintf "%S: want host:port" tok)
      | Some i -> (
        let host = String.sub tok 0 i in
        let port = String.sub tok (i + 1) (String.length tok - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && host <> "" -> Ok (host, p)
        | _ -> Error (Printf.sprintf "%S: want host:port" tok))
    in
    let rec all acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
        match worker tok with Ok w -> all (w :: acc) rest | Error _ as e -> e)
    in
    match
      all [] (String.split_on_char ',' s |> List.filter (fun x -> String.trim x <> ""))
    with
    | Ok [] -> Error (`Msg "empty worker list")
    | Ok ws -> Ok ws
    | Error msg -> Error (`Msg msg)
  in
  let print ppf ws =
    Format.pp_print_string ppf
      (String.concat "," (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) ws))
  in
  let workers_conv = Arg.conv (parse, print) in
  let doc = "Comma-separated worker addresses, e.g. $(b,127.0.0.1:7801,127.0.0.1:7802)." in
  Arg.(
    required & opt (some workers_conv) None & info [ "w"; "workers" ] ~docv:"HOST:PORT,..." ~doc)

let coord_cmd =
  let shard =
    let doc = "Sharding policy: $(b,hash) (default; duplicate lines collapse) or $(b,rr)." in
    let shard_conv =
      Arg.conv
        ( (function
          | "hash" -> Ok Delphic_cluster.Coordinator.By_hash
          | "rr" -> Ok Delphic_cluster.Coordinator.Round_robin
          | s -> Error (`Msg (Printf.sprintf "%S: want hash or rr" s))),
          fun ppf s ->
            Format.pp_print_string ppf
              (match s with
              | Delphic_cluster.Coordinator.By_hash -> "hash"
              | Delphic_cluster.Coordinator.Round_robin -> "rr") )
    in
    Arg.(
      value & opt shard_conv Delphic_cluster.Coordinator.By_hash & info [ "shard" ] ~docv:"POLICY" ~doc)
  in
  let timeout =
    let doc = "Per-worker connect/read/write timeout in seconds." in
    Arg.(value & opt float 2.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let replicas =
    let doc =
      "Route every set to $(docv) distinct workers (successive positions on \
       the hash ring, clamped to the pool size).  With $(b,2) the cluster \
       answers EST fresh through the loss of any single worker — union \
       sketches are duplicate-insensitive, so replication never biases the \
       estimate.  $(b,1) disables replication."
    in
    Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"R" ~doc)
  in
  let dial_timeout =
    let doc =
      "TCP connect budget per worker dial in seconds, separate from \
       $(b,--timeout): a black-holed worker address costs one dial budget \
       and is quarantined instead of stalling the scatter."
    in
    Arg.(value & opt float 2.0 & info [ "dial-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let epoch =
    let doc =
      "Fencing epoch announced to every worker ($(b,COORD) verb; $(b,0) \
       disables fencing).  Workers refuse mutations from connections whose \
       announced epoch has been superseded — how a deposed primary's late \
       writes die after a failover."
    in
    Arg.(value & opt int 1 & info [ "epoch" ] ~docv:"E" ~doc)
  in
  let standby_of =
    let standby_conv =
      Arg.conv
        ( (fun tok ->
            match String.rindex_opt tok ':' with
            | None -> Error (`Msg (Printf.sprintf "%S: want host:port" tok))
            | Some i -> (
              let host = String.sub tok 0 i in
              let port = String.sub tok (i + 1) (String.length tok - i - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && host <> "" -> Ok (host, p)
              | _ -> Error (`Msg (Printf.sprintf "%S: want host:port" tok)))),
          fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p )
    in
    let doc =
      "Run as a warm standby of the primary coordinator at $(docv): serve \
       every query read-only (mutations answer $(b,ERR READONLY)) while the \
       primary's LEASE renews, and take over — rebuilding routing state \
       purely from the workers and fencing the old primary with a higher \
       epoch — when it stops."
    in
    Arg.(
      value
      & opt (some standby_conv) None
      & info [ "standby-of" ] ~docv:"HOST:PORT" ~doc)
  in
  let lease_interval =
    let doc =
      "Lease poll period in seconds for $(b,--standby-of); 3 consecutive \
       misses trigger the takeover."
    in
    Arg.(value & opt float 0.5 & info [ "lease-interval" ] ~docv:"SECONDS" ~doc)
  in
  let batch =
    let doc =
      "Scatter batch size: up to $(docv) consecutive same-session sets are \
       framed into one ADDB request per worker ($(b,1) disables batching)."
    in
    Arg.(value & opt int 64 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let gather_domains =
    let doc =
      "Domains spent on the gather's sketch decode/merge tree ($(b,1) keeps \
       the fold on the calling thread; the folded sketch is identical either \
       way).  Defaults to the machine's recommended domain count, capped at 4."
    in
    Arg.(value & opt (some int) None & info [ "gather-domains" ] ~docv:"N" ~doc)
  in
  let proto =
    let doc =
      "Wire protocol toward the workers: $(b,v1) (newline-delimited text) or \
       $(b,v2) (length-prefixed CRC-framed binary; ADDB payloads travel raw \
       and workers journal them by splicing the received frame)."
    in
    let proto_conv =
      Arg.conv
        ( (function
          | "v1" -> Ok Delphic_cluster.Rpc.V1
          | "v2" -> Ok Delphic_cluster.Rpc.V2
          | s -> Error (`Msg (Printf.sprintf "%S: want v1 or v2" s))),
          fun ppf p ->
            Format.pp_print_string ppf
              (match p with Delphic_cluster.Rpc.V1 -> "v1" | Delphic_cluster.Rpc.V2 -> "v2") )
    in
    Arg.(value & opt proto_conv Delphic_cluster.Rpc.V2 & info [ "proto" ] ~docv:"VERSION" ~doc)
  in
  let run seed port host workers shard timeout replicas dial_timeout epoch
      standby_of lease_interval batch gather_domains proto max_conns domains =
    ignore (Delphic_server.Evloop.raise_nofile (max_conns + 64));
    let domains = resolve_domains domains in
    let coord =
      Delphic_cluster.Coordinator.create ~sharding:shard ~replicas ~timeout
        ~dial_timeout ~epoch ~batch ?gather_domains ~proto ~workers ~seed ()
    in
    let failover =
      Option.map
        (fun primary ->
          let f =
            Delphic_cluster.Failover.create ~interval:lease_interval ~proto
              ~dial_timeout ~timeout ~primary ~coord ()
          in
          Delphic_cluster.Failover.start f;
          f)
        standby_of
    in
    let frontend =
      Delphic_cluster.Frontend.create ~host ~port ~max_conns ~domains
        ~shard_fresh:(fun () -> Delphic_cluster.Coordinator.shard_freshness coord)
        ~dispatch:(Delphic_cluster.Coordinator.dispatch coord)
        ()
    in
    Delphic_cluster.Frontend.install_signals frontend;
    Printf.printf
      "delphic coord: listening on %s:%d, %d workers (%s sharding, %d replica%s%s)\n%!"
      host
      (Delphic_cluster.Frontend.port frontend)
      (List.length workers)
      (match shard with
      | Delphic_cluster.Coordinator.By_hash -> "hash"
      | Delphic_cluster.Coordinator.Round_robin -> "round-robin")
      replicas
      (if replicas = 1 then "" else "s")
      (match standby_of with
      | None -> ""
      | Some (h, p) -> Printf.sprintf ", standby of %s:%d" h p);
    Delphic_cluster.Frontend.serve frontend;
    Option.iter Delphic_cluster.Failover.stop failover;
    Delphic_cluster.Coordinator.shutdown coord;
    print_endline "delphic coord: stopped (workers keep running)"
  in
  let doc =
    "Run the scatter/gather coordinator: speaks the same protocol as \
     $(b,delphic serve), sharding ADDs across workers ($(b,--replicas) \
     copies each) and answering EST by merging their sketches (DEGRADED is \
     flagged only when some shard has no fresh replica at all).  EXPR \
     set-expression queries are answered coordinator-side from the same \
     gathered sketches — workers need no new verb.  With \
     $(b,--standby-of) the process is a warm standby that takes over with \
     a fencing epoch when the primary's lease lapses."
  in
  Cmd.v
    (Cmd.info "coord" ~doc)
    Term.(
      const run $ seed $ port_arg $ host_arg $ workers_arg $ shard $ timeout
      $ replicas $ dial_timeout $ epoch $ standby_of $ lease_interval $ batch
      $ gather_domains $ proto $ max_conns_arg $ domains_arg)

(* query: one-shot client for the service. *)

let query_cmd =
  let commands =
    let doc =
      "Request lines to send (e.g. \"PING\", \"OPEN s1 rect 0.2 0.1 40\", \
       \"ADD s1 t=12.5 0 9 0 9\", \"WIN s1 60\", \"EXPR (A & B) \\\\ C\"); \
       with none, lines are read from stdin."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST" ~doc)
  in
  let at =
    let doc =
      "Pin the logical clock at $(docv) seconds: WIN lines without an \
       explicit $(b,at=) are pinned to it, and ADD/ADDB lines without \
       $(b,t=) are stamped with it — reproducible windowed runs without \
       editing every line."
    in
    Arg.(value & opt (some float) None & info [ "at" ] ~docv:"SECS" ~doc)
  in
  let run port host at commands =
    let pin line =
      match at with
      | None -> line
      | Some a -> (
        let module P = Delphic_server.Protocol in
        match P.parse_request line with
        | Ok (P.Win ({ at = None; _ } as r)) ->
          P.render_request (P.Win { r with at = Some a })
        | Ok (P.Add ({ ts = None; _ } as r)) ->
          P.render_request (P.Add { r with ts = Some a })
        | Ok (P.Add_batch ({ ts = None; _ } as r)) ->
          P.render_request (P.Add_batch { r with ts = Some a })
        | Ok _ | Error _ -> line (* anything else goes out verbatim *))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    (try Unix.connect fd addr
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "delphic query: cannot connect to %s:%d: %s\n" host port
         (Unix.error_message e);
       exit 1);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let failures = ref 0 in
    let roundtrip line =
      let line = pin line in
      output_string oc line;
      output_char oc '\n';
      flush oc;
      match input_line ic with
      | reply ->
        print_endline reply;
        if String.length reply >= 4 && String.sub reply 0 4 = "ERR " then incr failures
      | exception End_of_file ->
        prerr_endline "delphic query: server closed the connection";
        exit 1
    in
    (match commands with
    | [] -> (
      try
        while true do
          roundtrip (input_line stdin)
        done
      with End_of_file -> ())
    | _ -> List.iter roundtrip commands);
    Unix.close fd;
    if !failures > 0 then exit 3
  in
  let doc =
    "Send protocol requests to a running $(b,delphic serve) and print the \
     replies (exit 3 if any reply is an ERR).  Supports the full grammar \
     including timestamped ingestion (ADD/ADDB $(b,t=) tokens) and windowed \
     queries ($(b,WIN <session> <seconds> [at=<secs>])); $(b,--at) pins the \
     logical clock across a whole scripted run."
  in
  Cmd.v (Cmd.info "query" ~doc) Term.(const run $ port_arg $ host_arg $ at $ commands)

(* experiments *)

let experiments_cmd =
  let only =
    let doc = "Run only the experiment with this id (e.g. E4); default: all." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let list_flag =
    let doc = "List experiment ids and exit." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let csv_flag =
    let doc = "Emit tables as CSV instead of aligned text." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let run only list_flag csv_flag =
    if csv_flag then Delphic_harness.Table.set_output `Csv;
    if list_flag then
      List.iter
        (fun (id, descr, _) -> Printf.printf "%-4s %s\n" id descr)
        Delphic_harness.Experiments.all
    else
      match only with
      | Some id -> Delphic_harness.Experiments.run id
      | None -> Delphic_harness.Experiments.run_all ()
  in
  let doc = "Run the paper-reproduction experiment suite (see EXPERIMENTS.md)." in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ only $ list_flag $ csv_flag)

let () =
  let doc = "streaming estimation of the size of unions of Delphic sets (PODS'22)" in
  let info = Cmd.info "delphic" ~version:"1.0.0" ~doc in
  match
    Cmd.eval ~catch:false
      (Cmd.group info
         [ kmp_cmd; dnf_cmd; coverage_cmd; distinct_cmd; hypervolume_cmd; xor_cmd;
           compare_cmd; watch_cmd; serve_cmd; worker_cmd; coord_cmd; query_cmd;
           experiments_cmd ])
  with
  | code -> exit code
  | exception Delphic_stream.Parsers.Parse_error { line; msg } ->
    (* Malformed input data is a user error, not a crash: no backtrace. *)
    Printf.eprintf "delphic: parse error at line %d: %s\n" line msg;
    exit 2
  | exception exn ->
    Printf.eprintf "delphic: internal error: %s\n" (Printexc.to_string exn);
    exit 125
