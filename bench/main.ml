(* Benchmark harness.

   Two layers:
   1. bechamel micro-benchmarks — one Test.make per experiment table,
      measuring the steady-state per-operation cost of the code path that
      table exercises (update time for E1-E6/E9, sketch insertions for E7,
      union sampling for E10);
   2. the macro experiment tables E1-E13 and ablations A1-A4 from
      EXPERIMENTS.md, printed after the micro-benchmarks.

   Run with:  dune exec bench/main.exe            (everything)
              dune exec bench/main.exe -- micro   (micro-benchmarks only)
              dune exec bench/main.exe -- macro   (experiment tables only)
              dune exec bench/main.exe -- cluster (1-vs-4-worker scatter/gather)
              dune exec bench/main.exe -- ingest  (ADDB batch-size sweep)
              dune exec bench/main.exe -- gather  (worker x fold-strategy sweep)
              dune exec bench/main.exe -- repl    (replication-factor sweep)
              dune exec bench/main.exe -- wal     (journal fsync-policy sweep)
              dune exec bench/main.exe -- window  (WIN window-length sweep)
              dune exec bench/main.exe -- conns   (idle-connection scaling sweep)

   Any benchmarking mode also accepts [--json FILE] to write the measured
   rows as a JSON array of {name, ns_per_op, ops_per_s} objects; the
   cluster mode defaults to BENCH_cluster.json, the ingest mode to
   BENCH_ingest.json, the gather mode to BENCH_gather.json, the repl mode
   to BENCH_repl.json, the wal mode to BENCH_wal.json, the expr mode to
   BENCH_expr.json, the window mode to BENCH_window.json and the conns
   mode to BENCH_conns.json. *)

open Bechamel
open Toolkit
module Rng = Delphic_util.Rng
module Rectangle = Delphic_sets.Rectangle
module Range1d = Delphic_sets.Range1d
module Workload = Delphic_stream.Workload

module Vatic_rect = Delphic_core.Vatic.Make (Rectangle)
module Vatic_range = Delphic_core.Vatic.Make (Range1d)
module Vatic_dnf = Delphic_core.Vatic.Make (Delphic_sets.Dnf)
module Vatic_cov = Delphic_core.Vatic.Make (Delphic_sets.Coverage)
module Vatic_single = Delphic_core.Vatic.Make (Delphic_sets.Singleton)
module Aps_rect = Delphic_core.Aps_estimator.Make (Rectangle)
module Wrap_range = Delphic_sets.Approx_wrap.Make (Range1d)
module Ext_vatic_range = Delphic_core.Ext_vatic.Make (Wrap_range)
module Xs_dnf = Delphic_core.Xor_sketch.Make (Delphic_sets.Dnf)

(* Steady-state per-item processing cost: pre-fill the estimator with the
   whole stream once, then measure re-processing items cyclically — the
   bucket sits at its equilibrium size, which is what Theorem 1.2's update
   bound describes. *)
let cycling items process =
  let items = Array.of_list items in
  let i = ref 0 in
  fun () ->
    process items.(!i);
    i := (!i + 1) mod Array.length items

let e1_kmp_update () =
  let gen = Rng.create ~seed:1 in
  let pool = Workload.Rectangles.uniform gen ~universe:1_000_000 ~dim:2 ~count:150 ~max_side:60_000 in
  let t = Vatic_rect.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:40.0 ~seed:2 () in
  List.iter (Vatic_rect.process t) pool;
  cycling pool (Vatic_rect.process t)

let e2_aps_update () =
  let gen = Rng.create ~seed:1 in
  let pool = Workload.Rectangles.uniform gen ~universe:1_000_000 ~dim:2 ~count:150 ~max_side:60_000 in
  let t =
    Aps_rect.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:40.0 ~stream_length:10_000
      ~seed:2 ()
  in
  List.iter (Aps_rect.process t) pool;
  cycling pool (Aps_rect.process t)

let e3_kmp_update_d4 () =
  let gen = Rng.create ~seed:3 in
  let pool = Workload.Rectangles.uniform gen ~universe:65536 ~dim:4 ~count:100 ~max_side:1000 in
  let t = Vatic_rect.create ~epsilon:0.33 ~delta:0.2 ~log2_universe:64.0 ~seed:4 () in
  List.iter (Vatic_rect.process t) pool;
  cycling pool (Vatic_rect.process t)

let e4_dnf_update () =
  let gen = Rng.create ~seed:5 in
  let pool = Workload.Dnf_terms.random gen ~nvars:40 ~count:150 ~width:10 in
  let t = Vatic_dnf.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:40.0 ~seed:6 () in
  List.iter (Vatic_dnf.process t) pool;
  cycling pool (Vatic_dnf.process t)

let e5_ext_vatic_update () =
  let gen = Rng.create ~seed:7 in
  let alpha = 0.2 and gamma = 0.05 and eta = 0.1 in
  let pool =
    List.map
      (Wrap_range.wrap ~alpha ~gamma ~eta)
      (Workload.Ranges.uniform gen ~universe:1_000_000 ~count:300 ~max_len:4000)
  in
  let t =
    Ext_vatic_range.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:20.0 ~alpha ~gamma
      ~eta ~seed:8 ()
  in
  List.iter (Ext_vatic_range.process t) pool;
  cycling pool (Ext_vatic_range.process t)

let e6_coverage_update () =
  let gen = Rng.create ~seed:9 in
  let vectors = Workload.Coverage_suites.random gen ~nbits:14 ~count:300 ~bias:0.5 in
  let pool = Workload.Coverage_suites.coverage_sets ~strength:2 vectors in
  let log2u =
    Delphic_util.Bigint.log2 (Delphic_sets.Coverage.universe_size ~n:14 ~strength:2)
  in
  let t = Vatic_cov.create ~epsilon:0.15 ~delta:0.2 ~log2_universe:log2u ~seed:10 () in
  List.iter (Vatic_cov.process t) pool;
  cycling pool (Vatic_cov.process t)

let e7_vatic_singleton_update () =
  let gen = Rng.create ~seed:11 in
  let pool = Workload.Singletons.uniform gen ~universe:(1 lsl 20) ~count:5000 in
  let t = Vatic_single.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:12 () in
  List.iter (Vatic_single.process t) pool;
  cycling pool (Vatic_single.process t)

let e7_bottom_k_update () =
  let gen = Rng.create ~seed:11 in
  let values =
    List.map Delphic_sets.Singleton.value
      (Workload.Singletons.uniform gen ~universe:(1 lsl 20) ~count:5000)
  in
  let bk = Delphic_core.Bottom_k.create ~epsilon:0.25 () in
  List.iter (Delphic_core.Bottom_k.add bk) values;
  cycling values (Delphic_core.Bottom_k.add bk)

let e7_hll_update () =
  let gen = Rng.create ~seed:11 in
  let values =
    List.map Delphic_sets.Singleton.value
      (Workload.Singletons.uniform gen ~universe:(1 lsl 20) ~count:5000)
  in
  let hll = Delphic_core.Hyperloglog.create ~bits:12 () in
  List.iter (Delphic_core.Hyperloglog.add hll) values;
  cycling values (Delphic_core.Hyperloglog.add hll)

let e9_hypervolume_update () =
  let gen = Rng.create ~seed:13 in
  let pool =
    List.map Delphic_sets.Hypervolume.to_rectangle
      (Workload.Hypervolumes.pareto_front gen ~universe:512 ~dim:3 ~count:40)
  in
  let t = Vatic_rect.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:27.0 ~seed:14 () in
  List.iter (Vatic_rect.process t) pool;
  cycling pool (Vatic_rect.process t)

let e10_union_sample () =
  let gen = Rng.create ~seed:15 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:200 ~max_len:4000 in
  let t = Vatic_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:16 () in
  List.iter (Vatic_range.process t) pool;
  fun () -> ignore (Vatic_range.sample_union t)

let e11_bursty_update () =
  let gen = Rng.create ~seed:17 in
  let pool =
    Workload.Orders.bursty ~copies:8
      (Workload.Ranges.uniform gen ~universe:1_000_000 ~count:100 ~max_len:4000)
  in
  let t = Vatic_range.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:18 () in
  List.iter (Vatic_range.process t) pool;
  cycling pool (Vatic_range.process t)

let e12_xor_sketch_update () =
  let gen = Rng.create ~seed:19 in
  let pool = Workload.Dnf_terms.random gen ~nvars:26 ~count:150 ~width:8 in
  let t = Xs_dnf.create ~epsilon:0.25 ~delta:0.2 ~nvars:26 ~seed:20 () in
  List.iter (Xs_dnf.process t) pool;
  cycling pool (Xs_dnf.process t)

let a_series_lean_update () =
  (* The ablation tables vary constants; the micro bench pins the leanest
     configuration (capacity scale 1) for comparison against E1's default. *)
  let gen = Rng.create ~seed:21 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:150 ~max_len:4000 in
  let t =
    Vatic_range.create ~capacity_scale:1.0 ~epsilon:0.25 ~delta:0.2
      ~log2_universe:20.0 ~seed:22 ()
  in
  List.iter (Vatic_range.process t) pool;
  cycling pool (Vatic_range.process t)

(* Service hot path (EXPERIMENTS.md, "server overhead"): the per-request cost
   of the TCP service minus the socket — wire parsing alone, registry
   dispatch alone, and the full parse -> dispatch -> render step.  The gap
   between serve/registry-dispatch and E1's raw update time is the price of
   the session table + protocol layer. *)

module Protocol = Delphic_server.Protocol
module Registry = Delphic_server.Registry

let serve_request_lines () =
  let gen = Rng.create ~seed:23 in
  let boxes =
    Workload.Rectangles.uniform gen ~universe:1_000_000 ~dim:2 ~count:200
      ~max_side:50_000
  in
  "PING" :: "EST bench" :: "STATS bench"
  :: List.map
       (fun b ->
         let lo = Rectangle.lo b and hi = Rectangle.hi b in
         Printf.sprintf "ADD bench %d %d %d %d" lo.(0) hi.(0) lo.(1) hi.(1))
       boxes

let serve_registry () =
  let reg = Registry.create ~seed:25 () in
  (match
     Registry.open_session reg ~name:"bench" ~family:Protocol.Rect ~epsilon:0.2
       ~delta:0.2 ~log2_universe:40.0
   with
  | Ok () -> ()
  | Error _ -> assert false);
  reg

let serve_protocol_parse () =
  cycling (serve_request_lines ()) (fun l -> ignore (Protocol.parse_request l))

let serve_registry_dispatch () =
  let reg = serve_registry () in
  let reqs =
    List.filter_map
      (fun l -> Result.to_option (Protocol.parse_request l))
      (serve_request_lines ())
  in
  List.iter (fun r -> ignore (Registry.dispatch reg r)) reqs;
  cycling reqs (fun r -> ignore (Registry.dispatch reg r))

let serve_request_step () =
  let reg = serve_registry () in
  let lines = serve_request_lines () in
  List.iter
    (fun l ->
      match Protocol.parse_request l with
      | Ok req -> ignore (Registry.dispatch reg req)
      | Error _ -> ())
    lines;
  cycling lines (fun l ->
      let resp =
        match Protocol.parse_request l with
        | Ok req -> Registry.dispatch reg req
        | Error e -> Protocol.Error_reply e
      in
      ignore (Protocol.render_response resp))

let micro_tests () =
  Test.make_grouped ~name:"delphic"
    [
      Test.make ~name:"E1/vatic-kmp-d2-update" (Staged.stage (e1_kmp_update ()));
      Test.make ~name:"E2/aps-kmp-d2-update" (Staged.stage (e2_aps_update ()));
      Test.make ~name:"E3/vatic-kmp-d4-update" (Staged.stage (e3_kmp_update_d4 ()));
      Test.make ~name:"E4/vatic-dnf-update" (Staged.stage (e4_dnf_update ()));
      Test.make ~name:"E5/ext-vatic-range-update" (Staged.stage (e5_ext_vatic_update ()));
      Test.make ~name:"E6/vatic-coverage-update" (Staged.stage (e6_coverage_update ()));
      Test.make ~name:"E7/vatic-singleton-update" (Staged.stage (e7_vatic_singleton_update ()));
      Test.make ~name:"E7/bottom-k-add" (Staged.stage (e7_bottom_k_update ()));
      Test.make ~name:"E7/hll-add" (Staged.stage (e7_hll_update ()));
      Test.make ~name:"E9/vatic-hypervolume-update" (Staged.stage (e9_hypervolume_update ()));
      Test.make ~name:"E10/union-sample" (Staged.stage (e10_union_sample ()));
      Test.make ~name:"E11/vatic-bursty-update" (Staged.stage (e11_bursty_update ()));
      Test.make ~name:"E12/xor-sketch-dnf-update" (Staged.stage (e12_xor_sketch_update ()));
      Test.make ~name:"A/vatic-lean-capacity-update" (Staged.stage (a_series_lean_update ()));
      Test.make ~name:"serve/protocol-parse" (Staged.stage (serve_protocol_parse ()));
      Test.make ~name:"serve/registry-dispatch" (Staged.stage (serve_registry_dispatch ()));
      Test.make ~name:"serve/request-step" (Staged.stage (serve_request_step ()));
    ]

let run_bechamel tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.sort compare !rows

let print_rows ~title rows =
  print_endline title;
  print_endline (String.make (String.length title) '=');
  List.iter (fun (name, ns) -> Printf.printf "%-44s %12.1f ns/op\n" name ns) rows

let write_json ~path rows =
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, ns) ->
      let ns = if Float.is_nan ns then 0.0 else ns in
      let ops = if ns > 0.0 then 1e9 /. ns else 0.0 in
      Printf.fprintf oc
        "  {\"name\": %S, \"ns_per_op\": %.1f, \"ops_per_s\": %.1f}%s\n" name ns
        ops
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) path

let run_micro ?json () =
  let rows = run_bechamel (micro_tests ()) in
  print_rows ~title:"Micro-benchmarks (bechamel, monotonic clock)" rows;
  Option.iter (fun path -> write_json ~path rows) json

(* Cluster benchmark: the same rect stream scattered through a coordinator
   backed by 1 vs 4 loopback in-process workers — the per-set cost of the
   pipelined scatter path and the per-query cost of a full gather+fold. *)

module Server = Delphic_server.Server
module Wal = Delphic_server.Wal
module Coordinator = Delphic_cluster.Coordinator

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let cluster_env ?(batch = 64) ?(count = 300) ?gather_domains ?wal ?(wal_group = 1)
    ?(domains = 1) ?(proto = Delphic_cluster.Rpc.V1) ?(replicas = 1) ~n_workers
    ~seed () =
  let spool n =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "delphic-bench-spool-%d-%d-%d-%d-%d" (Unix.getpid ())
         n_workers batch (seed + n) n)
  in
  let wal_dir n = spool n ^ "-wal" in
  let workers =
    List.init n_workers (fun n ->
        rm_rf (spool n);
        rm_rf (wal_dir n);
        let wal =
          Option.map
            (fun (fsync, checkpoint_every) ->
              { Server.dir = wal_dir n; fsync; checkpoint_every; group = wal_group })
            wal
        in
        let s =
          Server.create ?wal ~port:0 ~spool:(spool n) ~seed:(seed + n) ~domains ()
        in
        (s, Server.start s))
  in
  let coord =
    Coordinator.create ~batch ?gather_domains ~proto ~replicas
      ~workers:(List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers)
      ~seed ()
  in
  (match
     Coordinator.open_session coord ~name:"bench" ~family:Protocol.Rect
       ~epsilon:0.2 ~delta:0.2 ~log2_universe:40.0
   with
  | Ok () -> ()
  | Error _ -> assert false);
  (* Tiny sets (at most 9 points each, union below the session's exact
     capacity) keep the worker-side update in the microsecond range, so the
     scatter rows measure the ingestion pipeline — framing, staging, flush,
     ack draining — rather than sketch CPU.  Heavy-update cost is E1's row
     in the micro bench. *)
  let gen = Rng.create ~seed:31 in
  let payloads =
    List.map
      (fun b ->
        let lo = Rectangle.lo b and hi = Rectangle.hi b in
        Printf.sprintf "%d %d %d %d" lo.(0) hi.(0) lo.(1) hi.(1))
      (Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count
         ~max_side:3)
  in
  List.iter
    (fun p -> ignore (Coordinator.add coord ~name:"bench" ~payload:p))
    payloads;
  Coordinator.flush coord;
  let teardown () =
    ignore (Coordinator.close coord ~name:"bench");
    Coordinator.shutdown coord;
    List.iteri
      (fun n (s, th) ->
        Server.request_stop s;
        Thread.join th;
        rm_rf (spool n);
        rm_rf (wal_dir n))
      workers
  in
  (coord, payloads, teardown)

let scatter coord payloads =
  cycling payloads (fun p ->
      ignore (Coordinator.add coord ~name:"bench" ~payload:p))

(* The query pattern a sharded deployment actually runs: the stream keeps
   arriving while clients poll the estimate.  Each op scatters [ingest]
   payloads (cycling the pool) and then gathers — so the row prices one
   query *at* the cluster's ingest advantage, not on an artificially idle
   pool.  The idle-cluster gather (where the coordinator's fold memo makes
   the query RPC-bound) is measured separately by the gather mode. *)
let live_gather ~ingest coord payloads =
  let arr = Array.of_list payloads in
  let i = ref 0 in
  fun () ->
    for _ = 1 to ingest do
      ignore (Coordinator.add coord ~name:"bench" ~payload:arr.(!i));
      i := (!i + 1) mod Array.length arr
    done;
    ignore (Coordinator.estimate coord ~name:"bench")

let idle_gather coord () = ignore (Coordinator.estimate coord ~name:"bench")

let run_cluster ?(json = "BENCH_cluster.json") () =
  let c1, p1, teardown1 = cluster_env ~n_workers:1 ~seed:41 () in
  let c4, p4, teardown4 = cluster_env ~n_workers:4 ~seed:47 () in
  (* warm the worker wire caches and the coordinator fold memo so gather-est
     prices the steady-state query on a quiescent cluster (same regime as
     the committed baseline); the live regime is the gather mode's job *)
  ignore (Coordinator.estimate c1 ~name:"bench");
  ignore (Coordinator.estimate c4 ~name:"bench");
  let tests =
    Test.make_grouped ~name:"cluster"
      [
        Test.make ~name:"scatter-add/1-worker" (Staged.stage (scatter c1 p1));
        Test.make ~name:"scatter-add/4-workers" (Staged.stage (scatter c4 p4));
        Test.make ~name:"gather-est/1-worker"
          (Staged.stage (fun () -> idle_gather c1 ()));
        Test.make ~name:"gather-est/4-workers"
          (Staged.stage (fun () -> idle_gather c4 ()));
      ]
  in
  let rows = run_bechamel tests in
  teardown1 ();
  teardown4 ();
  print_rows ~title:"Cluster scatter/gather (loopback, in-process workers)" rows;
  write_json ~path:json rows

(* Gather sweep: 1/2/4/8 workers crossed with the fold strategy — serial
   left-fold on the calling thread (gather_domains=1) vs the domain-parallel
   merge tree.  Two query regimes per cell: est-idle (no ingest between
   queries; after the first fold the coordinator's memo makes this
   RPC-bound) and live (32 scattered adds per query, every worker's sketch
   changed, full decode + fold every time). *)
let run_gather ?(json = "BENCH_gather.json") () =
  let sweep = [ 1; 2; 4; 8 ] in
  let folds = [ ("serial-fold", 1); ("tree-fold", 4) ] in
  let envs =
    List.concat_map
      (fun k ->
        List.map
          (fun (fold_name, domains) ->
            let env =
              cluster_env ~gather_domains:domains ~n_workers:k
                ~seed:(80 + (10 * k) + domains) ()
            in
            (k, fold_name, env))
          folds)
      sweep
  in
  (* warm the worker wire caches and the coordinator's fold memo so the
     est-idle rows measure the steady state *)
  List.iter
    (fun (_, _, (coord, _, _)) ->
      ignore (Coordinator.estimate coord ~name:"bench"))
    envs;
  let idle =
    List.map
      (fun (k, fold_name, (coord, _, _)) ->
        Test.make
          ~name:(Printf.sprintf "est-idle/%d-workers/%s" k fold_name)
          (Staged.stage (fun () -> idle_gather coord ())))
      envs
  in
  let live =
    List.map
      (fun (k, fold_name, (coord, payloads, _)) ->
        Test.make
          ~name:(Printf.sprintf "live/%d-workers/%s" k fold_name)
          (Staged.stage (live_gather ~ingest:32 coord payloads)))
      envs
  in
  let rows = run_bechamel (Test.make_grouped ~name:"gather" (idle @ live)) in
  List.iter (fun (_, _, (_, _, teardown)) -> teardown ()) envs;
  print_rows ~title:"Gather sweep (workers x fold strategy, idle vs live)" rows;
  write_json ~path:json rows

(* Replication sweep: the 4-worker scatter/gather path at R = 1, 2, 3
   replicas per ring position.  Each replicated add stages the payload on R
   distinct ring successors, so the ingest rows price the replication tax
   directly (R=2 is the failover deployment's steady state; the C9 table in
   EXPERIMENTS.md tracks its overhead against the <= 1.6x budget).  The
   gather rows show the query side, where replication buys 1-of-R coverage
   for nearly free: the same n worker round-trips, one fold.  Runs on the
   v2 binary wire — the failover deployment's protocol — so the ratio is
   not inflated by v1 text parsing repeated once per copy. *)
let run_repl ?(json = "BENCH_repl.json") () =
  let sweep = [ 1; 2; 3 ] in
  let envs =
    List.map
      (fun r ->
        ( r,
          cluster_env ~proto:Delphic_cluster.Rpc.V2 ~replicas:r ~n_workers:4
            ~seed:(640 + (7 * r)) () ))
      sweep
  in
  (* warm wire caches and the fold memo, as in the cluster mode *)
  List.iter
    (fun (_, (coord, _, _)) -> ignore (Coordinator.estimate coord ~name:"bench"))
    envs;
  let tests =
    List.concat_map
      (fun (r, (coord, payloads, _)) ->
        [
          Test.make
            ~name:(Printf.sprintf "scatter-add/R%d/4-workers" r)
            (Staged.stage (scatter coord payloads));
          Test.make
            ~name:(Printf.sprintf "est-idle/R%d/4-workers" r)
            (Staged.stage (fun () -> idle_gather coord ()));
          Test.make
            ~name:(Printf.sprintf "live/R%d/4-workers" r)
            (Staged.stage (live_gather ~ingest:32 coord payloads));
        ])
      envs
  in
  let rows = run_bechamel (Test.make_grouped ~name:"repl" tests) in
  List.iter (fun (_, (_, _, teardown)) -> teardown ()) envs;
  print_rows ~title:"Replication sweep (R x 4-worker loopback cluster)" rows;
  (match
     ( List.assoc_opt "repl/scatter-add/R1/4-workers" rows,
       List.assoc_opt "repl/scatter-add/R2/4-workers" rows )
   with
  | Some r1, Some r2 when r1 > 0.0 ->
    Printf.printf "R=2 ingest overhead: %.2fx over R=1\n" (r2 /. r1)
  | _ -> ());
  write_json ~path:json rows

(* Ingest benchmark: the same 1-worker loopback scatter path swept across
   coordinator batch sizes and wire protocols — how much of the per-set RPC
   cost the ADDB framing amortises away, and what v2's binary framing
   (raw payload bytes, splice-journalled worker-side) shaves off on top.
   batch=1 is the unbatched baseline (one ADD frame and one flush per set).
   The v1 row names are unchanged from earlier baselines ([scatter-add/...]);
   the v2 rows are [scatter-add-v2/...]. *)

let run_ingest ?(json = "BENCH_ingest.json") () =
  let sweep = [ 1; 16; 64; 256 ] in
  let protos = [ ("scatter-add", Delphic_cluster.Rpc.V1, 60); ("scatter-add-v2", Delphic_cluster.Rpc.V2, 360) ] in
  let envs =
    List.concat_map
      (fun (prefix, proto, seed0) ->
        List.map
          (fun b ->
            (prefix, b, cluster_env ~batch:b ~proto ~n_workers:1 ~seed:(seed0 + b) ()))
          sweep)
      protos
  in
  let tests =
    Test.make_grouped ~name:"ingest"
      (List.map
         (fun (prefix, b, (coord, payloads, _)) ->
           Test.make
             ~name:(Printf.sprintf "%s/batch-%d" prefix b)
             (Staged.stage
                (cycling payloads (fun p ->
                     ignore (Coordinator.add coord ~name:"bench" ~payload:p)))))
         envs)
  in
  let rows = run_bechamel tests in
  List.iter (fun (_, _, (_, _, teardown)) -> teardown ()) envs;
  print_rows ~title:"Batched ingestion sweep (1-worker loopback, v1 vs v2)" rows;
  write_json ~path:json rows

(* WAL overhead: the batch-64 scatter path (the ingest mode's fastest row)
   against a 1-worker loopback server sweeping the journal configuration —
   what does "an acknowledged set is on disk" cost per set?  The journal
   appends one CRC-framed record per accepted ADDB frame, so the batch
   amortises the write (and, under [Always], the fsync) across up to 64
   sets; the checkpoint row adds the periodic spool-and-truncate on top. *)

let run_wal ?(json = "BENCH_wal.json") () =
  (* (name, wal (fsync, ckpt), group): group > 1 routes the appends through
     the group-commit writer domain, which is what lets fsync-always amortise
     its fsync across a whole batch instead of paying one per record. *)
  let configs =
    [
      ("no-wal", None, 1);
      ("wal/fsync-never", Some (Wal.Never, 0), 1);
      ("wal/fsync-interval", Some (Wal.Interval 0.2, 0), 1);
      ("wal/fsync-interval-ckpt512", Some (Wal.Interval 0.2, 512), 1);
      ("wal/fsync-always", Some (Wal.Always, 0), 1);
      ("wal/fsync-never-group64", Some (Wal.Never, 0), 64);
      ("wal/fsync-interval-group64", Some (Wal.Interval 0.2, 0), 64);
      ("wal/fsync-always-group64", Some (Wal.Always, 0), 64);
    ]
  in
  let envs =
    List.mapi
      (fun i (name, wal, wal_group) ->
        (name, cluster_env ?wal ~wal_group ~n_workers:1 ~seed:(120 + i) ()))
      configs
  in
  let tests =
    Test.make_grouped ~name:"wal"
      (List.map
         (fun (name, (coord, payloads, _)) ->
           Test.make
             ~name:(Printf.sprintf "scatter-add/batch-64/%s" name)
             (Staged.stage (scatter coord payloads)))
         envs)
  in
  let rows = run_bechamel tests in
  List.iter (fun (_, (_, _, teardown)) -> teardown ()) envs;
  print_rows ~title:"WAL overhead sweep (batch-64 scatter, 1-worker loopback)" rows;
  (match
     ( List.assoc_opt "wal/scatter-add/batch-64/wal/fsync-always-group64" rows,
       List.assoc_opt "wal/scatter-add/batch-64/wal/fsync-never-group64" rows )
   with
  | Some always, Some never when never > 0.0 ->
    Printf.printf "group commit: fsync-always = %.2fx fsync-never%s\n"
      (always /. never)
      (if always <= 1.3 *. never then "" else "  (above the 1.3x target)")
  | _ -> ());
  write_json ~path:json rows

(* EXPR query cost over a 3-worker cluster: expression depth crossed with
   the sample budget m, in two regimes.  Idle reuses the coordinator's
   per-leaf fold memo and the cross-session union memo, so the query prices
   clone + sample-and-probe; live scatters 8 adds into one leaf first, so
   every query re-gathers that leaf and re-folds the union. *)
let run_expr ?(json = "BENCH_expr.json") () =
  let n_workers = 3 in
  let spool n =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "delphic-bench-expr-%d-%d" (Unix.getpid ()) n)
  in
  let workers =
    List.init n_workers (fun n ->
        rm_rf (spool n);
        let s = Server.create ~port:0 ~spool:(spool n) ~seed:(140 + n) () in
        (s, Server.start s))
  in
  let coord =
    Coordinator.create ~batch:64
      ~workers:(List.map (fun (s, _) -> ("127.0.0.1", Server.port s)) workers)
      ~seed:73 ()
  in
  let sessions = [ "A"; "B"; "C" ] in
  List.iter
    (fun name ->
      match
        Coordinator.open_session coord ~name ~family:Protocol.Rect ~epsilon:0.2
          ~delta:0.2 ~log2_universe:40.0
      with
      | Ok () -> ()
      | Error _ -> assert false)
    sessions;
  (* one shared small universe so the three sessions genuinely overlap and
     the deeper expressions have evidence to find *)
  let gen = Rng.create ~seed:29 in
  let pool () =
    List.map
      (fun b ->
        let lo = Rectangle.lo b and hi = Rectangle.hi b in
        Printf.sprintf "%d %d %d %d" lo.(0) hi.(0) lo.(1) hi.(1))
      (Workload.Rectangles.uniform gen ~universe:400 ~dim:2 ~count:200
         ~max_side:30)
  in
  List.iter
    (fun name ->
      List.iter (fun p -> ignore (Coordinator.add coord ~name ~payload:p)) (pool ()))
    sessions;
  Coordinator.flush coord;
  let parse = Delphic_stream.Parsers.expr_of_string in
  let exprs =
    [ ("depth1", "A | B"); ("depth2", "(A & B) \\ C"); ("depth3", "((A | B) & C) ^ A") ]
  in
  (* warm every leaf's last-good sketch and the fold memos *)
  List.iter
    (fun (_, src) ->
      ignore (Coordinator.expr_query coord ~expr:(parse src) ~m:(Some 64)))
    exprs;
  let live_arr = Array.of_list (pool ()) in
  let live_i = ref 0 in
  let query e m () = ignore (Coordinator.expr_query coord ~expr:e ~m:(Some m)) in
  let live e m () =
    for _ = 1 to 8 do
      ignore (Coordinator.add coord ~name:"A" ~payload:live_arr.(!live_i));
      live_i := (!live_i + 1) mod Array.length live_arr
    done;
    query e m ()
  in
  let tests =
    Test.make_grouped ~name:"expr"
      (List.concat_map
         (fun (dname, src) ->
           let e = parse src in
           List.concat_map
             (fun m ->
               [
                 Test.make
                   ~name:(Printf.sprintf "%s/m=%d/idle" dname m)
                   (Staged.stage (query e m));
                 Test.make
                   ~name:(Printf.sprintf "%s/m=%d/live" dname m)
                   (Staged.stage (live e m));
               ])
             [ 64; 256; 1024 ])
         exprs)
  in
  let rows = run_bechamel tests in
  List.iter (fun name -> ignore (Coordinator.close coord ~name)) sessions;
  Coordinator.shutdown coord;
  List.iteri
    (fun n (s, th) ->
      Server.request_stop s;
      Thread.join th;
      rm_rf (spool n))
    workers;
  print_rows ~title:"EXPR query sweep (3-worker loopback cluster)" rows;
  write_json ~path:json rows

(* Windowed query cost over a 3-worker cluster: WIN swept across window
   lengths (1 s / 10 s / 60 s) in two regimes, with idle EST as the
   yardstick.  Idle leans on the cutoff-bucket quantization: repeated WIN
   inside one bucket ships byte-identical Fetch cutoffs, so the workers'
   wire caches and the coordinator's fold memo serve it just like EST —
   the design target is idle WIN within ~3x idle EST.  Live scatters 8
   ADDB-framed adds between queries, so every query re-gathers and
   re-folds. *)
let run_window ?(json = "BENCH_window.json") () =
  let coord, payloads, teardown =
    cluster_env ~n_workers:3 ~count:300 ~seed:200 ()
  in
  let windows = [ 1.0; 10.0; 60.0 ] in
  (* warm the wire caches and fold memos for the idle rows *)
  ignore (Coordinator.estimate coord ~name:"bench");
  List.iter
    (fun s -> ignore (Coordinator.win coord ~name:"bench" ~seconds:s ~at:None))
    windows;
  let win s () = ignore (Coordinator.win coord ~name:"bench" ~seconds:s ~at:None) in
  let arr = Array.of_list payloads in
  let i = ref 0 in
  let live s () =
    for _ = 1 to 8 do
      ignore (Coordinator.add coord ~name:"bench" ~payload:arr.(!i));
      i := (!i + 1) mod Array.length arr
    done;
    win s ()
  in
  let tests =
    Test.make_grouped ~name:"window"
      (Test.make ~name:"est-idle" (Staged.stage (fun () -> idle_gather coord ()))
      :: List.concat_map
           (fun s ->
             [
               Test.make
                 ~name:(Printf.sprintf "win-idle/%gs" s)
                 (Staged.stage (win s));
               Test.make
                 ~name:(Printf.sprintf "win-live/%gs" s)
                 (Staged.stage (live s));
             ])
           windows)
  in
  let rows = run_bechamel tests in
  teardown ();
  print_rows ~title:"Windowed query sweep (3-worker loopback cluster)" rows;
  (match List.assoc_opt "window/est-idle" rows with
  | Some est when est > 0.0 ->
    List.iter
      (fun s ->
        match List.assoc_opt (Printf.sprintf "window/win-idle/%gs" s) rows with
        | Some w ->
          Printf.printf "win-idle/%gs = %.2fx est-idle%s\n" s (w /. est)
            (if w <= 3.0 *. est then "" else "  (above the 3x target)")
        | None -> ())
      windows
  | _ -> ());
  write_json ~path:json rows

(* Connection scaling: one event-driven server, a growing crowd of parked
   idle connections, and two hot connections (one per wire protocol)
   measuring request round-trip latency at each crowd size.  A
   thread-per-connection server pays a stack per parked socket and dies at
   the thread limit; the readiness loop pays one registration, so the
   latency curve should stay flat through 10k idle connections. *)

module Rpc = Delphic_cluster.Rpc
module Evloop = Delphic_server.Evloop

let run_conns ?(json = "BENCH_conns.json") () =
  let target = 10_000 in
  let limit = Evloop.raise_nofile (target + 2048) in
  let spool =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "delphic-bench-conns-%d" (Unix.getpid ()))
  in
  rm_rf spool;
  let s = Server.create ~port:0 ~spool ~seed:7 () in
  let th = Server.start s in
  let port = Server.port s in
  let hot proto =
    match Rpc.connect ~proto ~host:"127.0.0.1" ~port ~timeout:5.0 () with
    | Ok c -> c
    | Error err -> failwith (Rpc.describe_connect_error err)
  in
  let v1 = hot Rpc.V1 and v2 = hot Rpc.V2 in
  let ping c =
    match Rpc.call c Protocol.Ping with
    | Ok Protocol.Pong -> ()
    | Ok _ -> failwith "unexpected PING reply"
    | Error msg -> failwith msg
  in
  let time_pings c =
    for _ = 1 to 200 do ping c done;
    let iters = 2000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do ping c done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  (* The client ends live in forked children (killed at teardown), so the
     server process pays exactly one descriptor per idle connection — the
     figure the sweep is about.  Each child connects its share, writes one
     byte when every connect has returned, then sleeps until SIGKILL. *)
  let children = ref [] in
  let parked = ref 0 in
  let park upto =
    let delta = upto - !parked in
    if delta > 0 then begin
      let r, w = Unix.pipe () in
      (match Unix.fork () with
      | 0 ->
        Unix.close r;
        let keep =
          Array.init delta (fun _ ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              fd)
        in
        ignore (Unix.write w (Bytes.make 1 'k') 0 1);
        ignore keep;
        while true do
          Unix.sleep 3600
        done
      | pid ->
        Unix.close w;
        ignore (Unix.read r (Bytes.create 1) 0 1);
        Unix.close r;
        children := pid :: !children);
      parked := upto;
      (* one round-trip plus a beat: every parked socket is accepted and
         registered before the measurement starts *)
      ping v1;
      Thread.delay 0.1
    end
  in
  let levels = List.filter (fun n -> n + 64 <= limit) [ 100; 1_000; 10_000 ] in
  if levels = [] then failwith "descriptor limit too low for any sweep level";
  let rows =
    List.concat_map
      (fun n ->
        park n;
        [
          (Printf.sprintf "ping/v1/idle-%d" n, time_pings v1);
          (Printf.sprintf "ping/v2/idle-%d" n, time_pings v2);
        ])
      levels
  in
  List.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    !children;
  Rpc.close v1;
  Rpc.close v2;
  Server.request_stop s;
  Thread.join th;
  rm_rf spool;
  print_rows
    ~title:
      (Printf.sprintf "Idle-connection scaling (descriptor limit in force: %d)"
         limit)
    rows;
  write_json ~path:json rows

(* Multicore sweep: one server sharded across D event-loop domains, C
   client domains each pipelining batch-64 binary ADDB frames (protocol v2,
   explicit t= so the worker journals by splicing the received frame) into
   its own session.  Wall-clock throughput, reported as ns/set — the
   sharding claim is the 4-domain row vs the 1-domain row, and the group
   commit claim is fsync-always-group64 vs fsync-never-group64 at 4
   domains.  NOTE: on a single-CPU host every row collapses to the serial
   throughput (domains just take turns); the scaling targets are for a
   >= 4-core runner. *)
let run_mt ?(json = "BENCH_mt.json") () =
  let clients = 4 and pipe_depth = 8 and rounds = 40 and batch = 64 in
  let gen = Rng.create ~seed:53 in
  let payloads =
    List.map
      (fun b ->
        let lo = Rectangle.lo b and hi = Rectangle.hi b in
        Printf.sprintf "%d %d %d %d" lo.(0) hi.(0) lo.(1) hi.(1))
      (Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count:batch
         ~max_side:3)
  in
  let spool tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "delphic-bench-mt-%d-%s" (Unix.getpid ()) tag)
  in
  let bench_one ~tag ~domains ~wal =
    let sp = spool tag in
    let wd = sp ^ "-wal" in
    rm_rf sp;
    rm_rf wd;
    let wal =
      Option.map
        (fun (fsync, group) ->
          { Server.dir = wd; fsync; checkpoint_every = 0; group })
        wal
    in
    let s = Server.create ?wal ~port:0 ~spool:sp ~seed:(300 + domains) ~domains () in
    let th = Server.start s in
    let port = Server.port s in
    let connect () =
      match Rpc.connect ~proto:Rpc.V2 ~host:"127.0.0.1" ~port ~timeout:30.0 () with
      | Ok c -> c
      | Error err -> failwith (Rpc.describe_connect_error err)
    in
    (* sessions opened serially from one control connection: OPEN order (and
       with it each session's derived seed) stays deterministic no matter
       how the client domains interleave later *)
    let ctl = connect () in
    for c = 0 to clients - 1 do
      match
        Rpc.call ctl
          (Protocol.Open
             {
               session = Printf.sprintf "mt%d" c;
               family = Protocol.Rect;
               epsilon = 0.2;
               delta = 0.2;
               log2_universe = 40.0;
             })
      with
      | Ok (Protocol.Ok_reply _) -> ()
      | Ok r -> failwith ("OPEN: unexpected reply " ^ Protocol.render_response r)
      | Error msg -> failwith ("OPEN: " ^ msg)
    done;
    let run_client c () =
      let conn = connect () in
      let req =
        Protocol.Add_batch
          { session = Printf.sprintf "mt%d" c; payloads; ts = Some 1.0 }
      in
      for _ = 1 to rounds do
        for _ = 1 to pipe_depth do
          Rpc.stage conn req
        done;
        (match Rpc.flush_staged conn with Ok () -> () | Error m -> failwith m);
        for _ = 1 to pipe_depth do
          match Rpc.recv conn with
          | Ok (Protocol.Ok_batch _) -> ()
          | Ok r -> failwith ("ADDB: unexpected reply " ^ Protocol.render_response r)
          | Error m -> failwith ("ADDB: " ^ m)
        done
      done;
      Rpc.close conn
    in
    let t0 = Unix.gettimeofday () in
    let doms = List.init clients (fun c -> Domain.spawn (run_client c)) in
    List.iter Domain.join doms;
    let elapsed = Unix.gettimeofday () -. t0 in
    Rpc.close ctl;
    Server.request_stop s;
    Thread.join th;
    rm_rf sp;
    rm_rf wd;
    let sets = clients * rounds * pipe_depth * batch in
    elapsed *. 1e9 /. float_of_int sets
  in
  let rows =
    [
      ("mt/scatter-addb64/1-domain", bench_one ~tag:"d1" ~domains:1 ~wal:None);
      ("mt/scatter-addb64/2-domains", bench_one ~tag:"d2" ~domains:2 ~wal:None);
      ("mt/scatter-addb64/4-domains", bench_one ~tag:"d4" ~domains:4 ~wal:None);
      ( "mt/scatter-addb64/4-domains/wal-always",
        bench_one ~tag:"d4wa" ~domains:4 ~wal:(Some (Wal.Always, 1)) );
      ( "mt/scatter-addb64/4-domains/wal-always-group64",
        bench_one ~tag:"d4wag" ~domains:4 ~wal:(Some (Wal.Always, 64)) );
      ( "mt/scatter-addb64/4-domains/wal-never-group64",
        bench_one ~tag:"d4wng" ~domains:4 ~wal:(Some (Wal.Never, 64)) );
    ]
  in
  print_rows
    ~title:
      (Printf.sprintf
         "Multicore sweep (%d pipelined v2 clients, batch-%d ADDB; host has %d core(s))"
         clients batch
         (Domain.recommended_domain_count ()))
    rows;
  (match
     ( List.assoc_opt "mt/scatter-addb64/1-domain" rows,
       List.assoc_opt "mt/scatter-addb64/4-domains" rows )
   with
  | Some d1, Some d4 when d4 > 0.0 ->
    Printf.printf "scaling: 4 domains = %.2fx the 1-domain throughput%s\n" (d1 /. d4)
      (if d1 /. d4 >= 2.5 then ""
       else "  (below the 2.5x target; needs a >= 4-core runner)")
  | _ -> ());
  (match
     ( List.assoc_opt "mt/scatter-addb64/4-domains/wal-always-group64" rows,
       List.assoc_opt "mt/scatter-addb64/4-domains/wal-never-group64" rows )
   with
  | Some always, Some never when never > 0.0 ->
    Printf.printf "group commit at 4 domains: fsync-always = %.2fx fsync-never%s\n"
      (always /. never)
      (if always <= 1.3 *. never then "" else "  (above the 1.3x target)")
  | _ -> ());
  write_json ~path:json rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split mode json = function
    | [] -> (mode, json)
    | "--json" :: path :: rest -> split mode (Some path) rest
    | arg :: rest when mode = None && String.length arg > 0 && arg.[0] <> '-' ->
      split (Some arg) json rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  let mode, json = split None None args in
  let mode = Option.value mode ~default:"all" in
  (match mode with
  | "micro" | "all" -> run_micro ?json ()
  | "macro" | "cluster" | "ingest" | "gather" | "repl" | "wal" | "expr"
  | "window" | "conns" | "mt" ->
    ()
  | m ->
    Printf.eprintf
      "unknown mode %S (expected micro, macro, cluster, ingest, gather, repl, wal, expr, window, conns, mt or all)\n"
      m;
    exit 2);
  (match mode with
  | "cluster" -> (
    match json with
    | Some path -> run_cluster ~json:path ()
    | None -> run_cluster ())
  | "ingest" -> (
    match json with
    | Some path -> run_ingest ~json:path ()
    | None -> run_ingest ())
  | "gather" -> (
    match json with
    | Some path -> run_gather ~json:path ()
    | None -> run_gather ())
  | "repl" -> (
    match json with
    | Some path -> run_repl ~json:path ()
    | None -> run_repl ())
  | "wal" -> (
    match json with
    | Some path -> run_wal ~json:path ()
    | None -> run_wal ())
  | "expr" -> (
    match json with
    | Some path -> run_expr ~json:path ()
    | None -> run_expr ())
  | "window" -> (
    match json with
    | Some path -> run_window ~json:path ()
    | None -> run_window ())
  | "conns" -> (
    match json with
    | Some path -> run_conns ~json:path ()
    | None -> run_conns ())
  | "mt" -> (
    match json with
    | Some path -> run_mt ~json:path ()
    | None -> run_mt ())
  | _ -> ());
  if mode = "macro" || mode = "all" then begin
    print_newline ();
    print_endline "Experiment tables (see EXPERIMENTS.md for the paper-claim mapping)";
    Delphic_harness.Experiments.run_all ()
  end
